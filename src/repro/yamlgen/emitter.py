"""YAML emitter (from scratch, block style).

Supports the subset Kubernetes manifests need: mappings, sequences,
scalars (str/int/float/bool/None), nesting, and multi-document streams.
Strings are quoted whenever a bare rendering would be re-parsed as a
different type or break the syntax.
"""

from __future__ import annotations

_INDENT = "  "

#: Words that would be re-parsed as non-string scalars (any case mix).
_SPECIAL_WORDS = {"true", "false", "yes", "no", "on", "off", "null",
                  "none", "nan", "inf", "~", ""}
_SYNTAX_CHARS = set(":#{}[],&*!|>'\"%@`")


class YamlEmitError(ValueError):
    pass


def needs_quoting(text: str) -> bool:
    """Would *text* be misread if emitted bare?"""
    if text.lower() in _SPECIAL_WORDS:
        return True
    if text != text.strip():
        return True
    if text[0] in "-?! " or text[0].isdigit() or text[0] in "+.":
        return True
    if any(ch in _SYNTAX_CHARS for ch in text):
        return True
    if "\n" in text or "\t" in text:
        return True
    if ": " in text or " #" in text:
        return True
    try:
        float(text)
        return True
    except ValueError:
        pass
    return False


def _scalar(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        return text
    if isinstance(value, str):
        if needs_quoting(value):
            escaped = (value.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t"))
            return f'"{escaped}"'
        return value
    raise YamlEmitError(f"cannot emit scalar of type {type(value).__name__}")


def _is_scalar(value: object) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _emit_node(value: object, lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(value, dict):
        if not value:
            lines.append(f"{pad}{{}}")
            return
        for key, item in value.items():
            if not isinstance(key, str):
                raise YamlEmitError(
                    f"mapping keys must be strings, got {key!r}")
            rendered_key = _scalar(key) if not needs_quoting(key) else _scalar(key)
            if _is_scalar(item):
                lines.append(f"{pad}{rendered_key}: {_scalar(item)}")
            elif isinstance(item, (dict, list)) and not item:
                empty = "{}" if isinstance(item, dict) else "[]"
                lines.append(f"{pad}{rendered_key}: {empty}")
            else:
                lines.append(f"{pad}{rendered_key}:")
                _emit_node(item, lines, depth + 1)
        return
    if isinstance(value, (list, tuple)):
        if not value:
            lines.append(f"{pad}[]")
            return
        for item in value:
            if _is_scalar(item):
                lines.append(f"{pad}- {_scalar(item)}")
            elif isinstance(item, dict) and item:
                # inline the first key after the dash, K8s style
                sub: list[str] = []
                _emit_node(item, sub, depth + 1)
                first = sub[0][len(_INDENT) * (depth + 1):]
                lines.append(f"{pad}- {first}")
                lines.extend(sub[1:])
            elif isinstance(item, (dict, list)) and not item:
                empty = "{}" if isinstance(item, dict) else "[]"
                lines.append(f"{pad}- {empty}")
            else:
                sub = []
                _emit_node(item, sub, depth + 1)
                first = sub[0][len(_INDENT) * (depth + 1):]
                lines.append(f"{pad}- {first}")
                lines.extend(sub[1:])
        return
    if _is_scalar(value):
        lines.append(f"{pad}{_scalar(value)}")
        return
    raise YamlEmitError(f"cannot emit value of type {type(value).__name__}")


def emit(value: object) -> str:
    """Render one document."""
    lines: list[str] = []
    _emit_node(value, lines, 0)
    return "\n".join(lines) + "\n"


def emit_documents(documents: list[object]) -> str:
    """Render a ``---``-separated multi-document stream."""
    return "---\n" + "---\n".join(emit(doc) for doc in documents)
