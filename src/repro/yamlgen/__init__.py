"""YAML emitter/parser written from scratch (Kubernetes-manifest subset)."""

from .emitter import YamlEmitError, emit, emit_documents, needs_quoting
from .parser import YamlParseError, parse, parse_documents, parse_scalar

__all__ = ["YamlEmitError", "YamlParseError", "emit", "emit_documents",
           "needs_quoting", "parse", "parse_documents", "parse_scalar"]
