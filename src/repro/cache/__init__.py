"""Content-addressed artifact caching for the generation data path.

The pipeline's units of work — per-source parse trees, the extracted
topology, per-machine intermediate JSON, per-manifest YAML — are pure
functions of their inputs, and between runs those inputs are
overwhelmingly unchanged. :class:`ArtifactCache` stores each artifact
on disk under a fingerprint of its inputs (SHA-256 over canonical JSON
plus a schema/version salt), so a warm run re-reads instead of
re-computing.

Hashing itself lives in :mod:`repro.fingerprint`; the re-exports here
(``fingerprint``, ``canonical_json``, ``CACHE_SCHEMA_VERSION``) are
deprecated and will disappear after one release.

See DESIGN.md ("Artifact cache") for the fingerprint composition and
invalidation rules.
"""

import warnings as _warnings

from .. import fingerprint as _fp_module
from . import fingerprint as _legacy_fingerprint_module  # noqa: F401
from .store import (ArtifactCache, CACHE_DIR_ENV, DEFAULT_CACHE_MAX_BYTES,
                    default_cache_dir)

__all__ = [
    "ArtifactCache", "CACHE_DIR_ENV", "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_MAX_BYTES", "canonical_json", "default_cache_dir",
    "fingerprint",
]


def _deprecated(name: str):
    _warnings.warn(
        f"importing {name} from repro.cache is deprecated; use "
        f"repro.fingerprint.{name} instead",
        DeprecationWarning, stacklevel=3)
    return getattr(_fp_module, name)


# Wrapper functions (not bare re-exports) so the deprecation fires on
# *call/access*, keeping `from repro.cache import fingerprint` working
# one release per the CHANGES.md policy.
def fingerprint(*parts: object, salt: str = ""):
    """Deprecated alias of :func:`repro.fingerprint.fingerprint`."""
    _warnings.warn(
        "repro.cache.fingerprint is deprecated; use "
        "repro.fingerprint.fingerprint instead",
        DeprecationWarning, stacklevel=2)
    return _fp_module.fingerprint(*parts, salt=salt)


def canonical_json(value: object) -> str:
    """Deprecated alias of :func:`repro.fingerprint.canonical_json`."""
    _warnings.warn(
        "repro.cache.canonical_json is deprecated; use "
        "repro.fingerprint.canonical_json instead",
        DeprecationWarning, stacklevel=2)
    return _fp_module.canonical_json(value)


def __getattr__(name: str):
    if name == "CACHE_SCHEMA_VERSION":
        return _deprecated(name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
