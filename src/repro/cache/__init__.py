"""Content-addressed artifact caching for the generation data path.

The pipeline's units of work — per-source parse trees, the extracted
topology, per-machine intermediate JSON, per-manifest YAML — are pure
functions of their inputs, and between runs those inputs are
overwhelmingly unchanged. :class:`ArtifactCache` stores each artifact
on disk under a fingerprint of its inputs (SHA-256 over canonical JSON
plus a schema/version salt), so a warm run re-reads instead of
re-computing.

Hashing itself lives in :mod:`repro.fingerprint`.

See DESIGN.md ("Artifact cache") for the fingerprint composition and
invalidation rules.
"""

from .store import (ArtifactCache, CACHE_DIR_ENV, DEFAULT_CACHE_MAX_BYTES,
                    default_cache_dir)

__all__ = [
    "ArtifactCache", "CACHE_DIR_ENV", "DEFAULT_CACHE_MAX_BYTES",
    "default_cache_dir",
]
