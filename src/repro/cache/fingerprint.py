"""Content fingerprints for the artifact cache.

A fingerprint is SHA-256 over the canonical-JSON rendering of the
inputs plus a salt. The salt has two components:

* :data:`CACHE_SCHEMA_VERSION` — bumped whenever the on-disk artifact
  layout changes, invalidating every entry at once;
* a per-layer salt string passed by the caller — it names the producing
  layer (``parse``, ``machine-config``, ``manifest``, ...) and embeds
  that layer's own version, so evolving one generator never serves
  stale artifacts from another.

Canonical JSON (sorted keys, no whitespace, ``default=str`` for exotic
leaf values) makes the fingerprint independent of dict insertion order
and stable across processes.
"""

from __future__ import annotations

import hashlib
import json

#: Bump to invalidate every cached artifact (on-disk layout change).
CACHE_SCHEMA_VERSION = 1


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, compact, ``str()`` fallback."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def fingerprint(*parts: object, salt: str = "") -> str:
    """SHA-256 hex digest over canonical forms of *parts* + the salt.

    Each part is length-prefixed before hashing so adjacent parts can
    never collide by concatenation (``("ab", "c")`` vs ``("a", "bc")``).
    ``bytes`` and ``str`` parts hash as-is; everything else goes through
    :func:`canonical_json`.
    """
    hasher = hashlib.sha256()
    hasher.update(f"repro-cache/v{CACHE_SCHEMA_VERSION}|{salt}".encode())
    for part in parts:
        if isinstance(part, bytes):
            data = part
        elif isinstance(part, str):
            data = part.encode()
        else:
            data = canonical_json(part).encode()
        hasher.update(b"|%d|" % len(data))
        hasher.update(data)
    return hasher.hexdigest()
