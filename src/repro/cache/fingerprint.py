"""Deprecated shim — fingerprints moved to :mod:`repro.fingerprint`.

``repro.cache.fingerprint`` used to own :func:`fingerprint`,
:func:`canonical_json` and :data:`CACHE_SCHEMA_VERSION`. They now live
in :mod:`repro.fingerprint` (one module for every layer's hashing and
salts). Importing them from here keeps working for one release and
emits a :class:`DeprecationWarning` naming the replacement.
"""

from __future__ import annotations

import warnings

from .. import fingerprint as _canonical

_MOVED = ("CACHE_SCHEMA_VERSION", "canonical_json", "fingerprint")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.cache.fingerprint.{name} is deprecated; use "
            f"repro.fingerprint.{name} instead",
            DeprecationWarning, stacklevel=2)
        return getattr(_canonical, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_MOVED))
