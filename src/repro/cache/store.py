"""Content-addressed, on-disk artifact cache.

Artifacts are stored under ``<directory>/<key[:2]>/<key[2:]>`` where the
key is a :func:`~repro.cache.fingerprint.fingerprint` of the producing
inputs. The store offers three payload codecs — raw bytes, JSON and
pickle — all sharing the same properties:

* **corruption tolerant**: a truncated, unreadable or undecodable entry
  counts as a miss and is deleted, never raised;
* **atomic writes**: payloads land via a temp file + ``os.replace``, so
  concurrent readers (worker threads, parallel runs) never observe a
  partial artifact;
* **size-bounded LRU**: after each put the store evicts
  least-recently-used entries (by mtime, refreshed on every hit) until
  the total payload size fits ``max_bytes``;
* **thread-safe**: one store instance may be shared by many threads
  (the serving layer funnels every request thread through one cache) —
  temp files are named per-thread and the size estimate plus eviction
  scan run under a lock, so racing puts and evictions never corrupt an
  entry or raise;
* **observable**: ``cache.hits`` / ``cache.misses`` / ``cache.evictions``
  counters in :data:`repro.obs.METRICS`.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import threading
from pathlib import Path

from ..obs import METRICS

_HITS = METRICS.counter("cache.hits")
_MISSES = METRICS.counter("cache.misses")
_EVICTIONS = METRICS.counter("cache.evictions")

#: Default size bound — generous for manifests, small for a dev machine.
DEFAULT_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-factory``."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return Path(configured).expanduser()
    return Path("~/.cache/repro-factory").expanduser()


class ArtifactCache:
    """A content-addressed artifact store rooted at one directory."""

    def __init__(self, directory: str | Path,
                 max_bytes: int = DEFAULT_CACHE_MAX_BYTES):
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.directory.mkdir(parents=True, exist_ok=True)
        # running size estimate so puts do not rescan the directory;
        # seeded lazily, corrected by every real eviction scan
        self._approx_bytes: int | None = None
        # guards _approx_bytes and the eviction scan; payload reads and
        # the os.replace publish are atomic on their own
        self._lock = threading.Lock()
        self._tmp_serial = itertools.count()

    # -- key layout ------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / key[2:]

    # -- raw loads/stores (no hit/miss accounting) -----------------------

    def _load(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return data

    def _store(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique per process *and* thread *and* call: two request
        # threads putting the same key must never share a temp file
        tmp = path.parent / (f".{path.name}.{os.getpid()}"
                             f".{threading.get_ident()}"
                             f".{next(self._tmp_serial)}.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return
        with self._lock:
            if self._approx_bytes is None:
                self._approx_bytes = sum(size for _, size, _
                                         in self._entries())
            else:
                self._approx_bytes += len(data)
            if self._approx_bytes > self.max_bytes:
                self._evict()

    def discard(self, key: str) -> None:
        """Drop one entry (used when a payload fails to decode)."""
        self._path(key).unlink(missing_ok=True)

    # -- payload codecs --------------------------------------------------

    def get_bytes(self, key: str) -> bytes | None:
        data = self._load(key)
        (_HITS if data is not None else _MISSES).inc()
        return data

    def put_bytes(self, key: str, data: bytes) -> None:
        self._store(key, data)

    def get_text(self, key: str) -> str | None:
        data = self._load(key)
        if data is not None:
            try:
                text = data.decode("utf-8")
            except UnicodeDecodeError:
                self.discard(key)
            else:
                _HITS.inc()
                return text
        _MISSES.inc()
        return None

    def put_text(self, key: str, text: str) -> None:
        self._store(key, text.encode("utf-8"))

    def get_json(self, key: str) -> object | None:
        data = self._load(key)
        if data is not None:
            try:
                value = json.loads(data)
            except ValueError:
                self.discard(key)
            else:
                _HITS.inc()
                return value
        _MISSES.inc()
        return None

    def put_json(self, key: str, value: object) -> None:
        # insertion order is preserved (NOT sorted): replayed artifacts
        # must serialize byte-identically to freshly generated ones
        self._store(key, json.dumps(value,
                                    separators=(",", ":")).encode("utf-8"))

    def get_object(self, key: str) -> object | None:
        """Unpickle an artifact; any unpickling failure is a miss."""
        data = self._load(key)
        if data is not None:
            try:
                value = pickle.loads(data)
            except Exception:
                self.discard(key)
            else:
                _HITS.inc()
                return value
        _MISSES.inc()
        return None

    def put_object(self, key: str, value: object) -> None:
        self._store(key, pickle.dumps(value,
                                      protocol=pickle.HIGHEST_PROTOCOL))

    # -- maintenance -----------------------------------------------------

    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for every stored artifact."""
        entries = []
        for path in self.directory.glob("??/*"):
            if path.name.endswith(".tmp"):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _evict(self) -> None:
        # caller holds self._lock
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total > self.max_bytes:
            for _, size, path in sorted(entries):  # oldest first
                path.unlink(missing_ok=True)
                _EVICTIONS.inc()
                total -= size
                if total <= self.max_bytes:
                    break
        self._approx_bytes = total

    def clear(self) -> int:
        """Remove every artifact; returns the number removed."""
        with self._lock:
            removed = 0
            for _, _, path in self._entries():
                path.unlink(missing_ok=True)
                removed += 1
            self._approx_bytes = 0
        return removed

    def stats(self) -> dict[str, object]:
        """On-disk state plus this process's hit/miss/eviction counters."""
        entries = self._entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "hits": _HITS.snapshot(),
            "misses": _MISSES.snapshot(),
            "evictions": _EVICTIONS.snapshot(),
        }

    def __repr__(self) -> str:
        return (f"ArtifactCache({str(self.directory)!r}, "
                f"max_bytes={self.max_bytes})")
