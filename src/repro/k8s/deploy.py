"""Deploying generated manifests onto the simulated cluster.

:func:`make_component_factory` wires pods to the actual simulated
software (:mod:`repro.som.components`); :func:`deploy_manifests` applies
ConfigMaps first (deployments mount them), then everything else — the
order ``kubectl apply -f dir/`` would need too.
"""

from __future__ import annotations

from ..faults import fault_point
from ..obs import METRICS, span as _span
from ..resilience import RetryPolicy, retry_call
from ..som.components import (FactoryWorld, HistorianComponent,
                              UaBrokerBridgeComponent,
                              WorkcellServerComponent)
from ..yamlgen import parse_documents
from .cluster import Cluster, ClusterError
from .resources import Pod

_DOCUMENTS_APPLIED = METRICS.counter("k8s.documents_applied")
_DEPLOYS = METRICS.counter("k8s.deployments_run")
_APPLY_RETRIES = METRICS.counter("k8s.apply_retries")

#: Apply steps retry transient I/O failures (the ``k8s.apply`` fault
#: site injects them in chaos runs) with a short deterministic backoff
#: — a flaky apply must not abort a whole rollout.
_APPLY_RETRY = RetryPolicy(max_attempts=4, base_delay=0.001,
                           max_delay=0.01, jitter=0.0)

_COMPONENT_CLASSES = {
    "opcua-server": WorkcellServerComponent,
    "opcua-client": UaBrokerBridgeComponent,
    "historian": HistorianComponent,
}


def make_component_factory(world: FactoryWorld):
    """A cluster component factory bound to one factory world."""

    def factory(pod: Pod, kind: str, config: dict | None):
        cls = _COMPONENT_CLASSES.get(kind)
        if cls is None:
            raise ClusterError(
                f"pod {pod.metadata.name!r} has unknown component kind "
                f"{kind!r}")
        if config is None:
            raise ClusterError(
                f"pod {pod.metadata.name!r} has no mounted config.json")
        return cls(config, world)

    return factory


#: Start order within one rollout: servers must listen before the
#: bridge clients connect, and historians only consume broker traffic.
_COMPONENT_ORDER = {"opcua-server": 0, "opcua-client": 1, "historian": 2}


def _apply_order(document: dict) -> tuple[int, int, str]:
    kind = document.get("kind", "")
    kind_rank = 0 if kind == "ConfigMap" else (1 if kind == "Service" else 2)
    labels = (document.get("metadata", {}) or {}).get("labels", {}) or {}
    component_rank = _COMPONENT_ORDER.get(labels.get("component", ""), 3)
    name = (document.get("metadata", {}) or {}).get("name", "")
    return (kind_rank, component_rank, name)


def heal(cluster: Cluster) -> dict[str, int]:
    """Self-heal after a failure: reschedule missing pods in dependency
    order, cascading restarts to downstream components.

    If any OPC UA *server* pod is missing (its endpoint went away), the
    bridge clients and historians hold dead sessions/subscriptions, so
    they are restarted too — the behaviour a liveness probe gives a real
    deployment.
    """
    def deployment_order(deployment):
        component = deployment.pod_labels.get("component", "")
        return (_COMPONENT_ORDER.get(component, 3),
                deployment.metadata.name)

    missing_servers = any(
        len(cluster.pods_for(d.metadata.name, d.metadata.namespace))
        < d.replicas
        for d in cluster.deployments.values()
        if d.pod_labels.get("component") == "opcua-server")
    restarted_downstream = 0
    if missing_servers:
        restarted_downstream += cluster.restart_pods(
            component="opcua-client")
        restarted_downstream += cluster.restart_pods(component="historian")
    before = len(cluster.running_pods())
    cluster.reconcile_all(order=deployment_order)
    after = len(cluster.running_pods())
    return {"rescheduled": after - before + restarted_downstream,
            "restarted_downstream": restarted_downstream,
            "running": after}


def apply_incremental(cluster: Cluster, incremental) -> dict[str, object]:
    """Apply only an incremental result's regenerated manifests.

    Changed ConfigMaps roll their deployments automatically; if any
    OPC UA *server* rolled, downstream bridges/historians are restarted
    (they hold sessions into the old server instance).
    """
    regenerated = {name: incremental.result.manifests[name]
                   for name in incremental.regenerated_manifests}
    applied = deploy_manifests(cluster, regenerated)
    server_rolled = any("opcua-server" in name for name in regenerated)
    restarted = 0
    if server_rolled:
        restarted += cluster.restart_pods(component="opcua-client")
        restarted += cluster.restart_pods(component="historian")

    def deployment_order(deployment):
        component = deployment.pod_labels.get("component", "")
        return (_COMPONENT_ORDER.get(component, 3),
                deployment.metadata.name)

    cluster.reconcile_all(order=deployment_order)
    return {"applied": len(applied),
            "manifests": sorted(regenerated),
            "restarted_downstream": restarted,
            "running": len(cluster.running_pods())}


def _apply_document(cluster: Cluster, document: dict) -> object:
    """One apply step, retried through transient (injected) I/O faults."""

    def attempt():
        fault_point("k8s.apply")
        return cluster.apply_manifest(document)

    return retry_call(
        attempt, policy=_APPLY_RETRY, retry_on=(OSError,),
        describe="k8s.apply",
        on_retry=lambda *_: _APPLY_RETRIES.inc())


def deploy_manifests(cluster: Cluster,
                     manifests: dict[str, str]) -> list[object]:
    """Apply all generated YAML files in dependency order.

    ConfigMaps first (deployments mount them), then Services, then
    Deployments ordered server -> client -> historian so each component
    finds its upstream already running.
    """
    with _span("deploy") as s:
        documents: list[dict] = []
        for filename in sorted(manifests):
            for document in parse_documents(manifests[filename]):
                if document is not None:
                    documents.append(document)
        applied = [_apply_document(cluster, document)
                   for document in sorted(documents, key=_apply_order)]
        _DEPLOYS.inc()
        _DOCUMENTS_APPLIED.inc(len(applied))
        if s.enabled:
            s.set("manifests", len(manifests))
            s.set("documents", len(applied))
    return applied
