"""Simulated Kubernetes: resources, cluster, scheduler, deployment."""

from .cluster import Cluster, ClusterError, ClusterNode
from .deploy import (apply_incremental, deploy_manifests, heal,
                     make_component_factory)
from .resources import (ConfigMap, Container, Deployment, Metadata, Pod,
                        ResourceError, Service, parse_cpu, parse_memory,
                        resource_from_manifest)

__all__ = [
    "Cluster", "ClusterError", "ClusterNode", "ConfigMap", "Container",
    "Deployment", "Metadata", "Pod", "ResourceError", "Service",
    "apply_incremental", "deploy_manifests", "heal",
    "make_component_factory", "parse_cpu",
    "parse_memory", "resource_from_manifest",
]
