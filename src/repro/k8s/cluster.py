"""The simulated Kubernetes cluster.

Nodes with CPU/memory capacity, an apply-based API, a deployment
controller that stamps out pods, a least-loaded scheduler, and service
endpoint resolution. Pods transition ``Pending -> Running`` when
scheduled (and, if a component factory is installed, once their
software component starts).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from .resources import (ConfigMap, Deployment, Metadata, Pod, Service,
                        resource_from_manifest)


class ClusterError(RuntimeError):
    pass


@dataclass
class ClusterNode:
    name: str
    cpu_capacity_m: int = 4000
    memory_capacity_mi: int = 8192
    pods: list[Pod] = field(default_factory=list)
    offline: bool = False

    @property
    def cpu_used_m(self) -> int:
        return sum(p.cpu_request_m for p in self.pods)

    @property
    def memory_used_mi(self) -> int:
        return sum(p.memory_request_mi for p in self.pods)

    def fits(self, pod: Pod) -> bool:
        if self.offline:
            return False
        return (self.cpu_used_m + pod.cpu_request_m <= self.cpu_capacity_m
                and self.memory_used_mi + pod.memory_request_mi
                <= self.memory_capacity_mi)


#: Builds the simulated software for a pod; returns an object with
#: optional .start() / .stop(). Receives (pod, component_kind, config).
ComponentFactory = Callable[[Pod, str, dict | None], object]


def _deployment_spec_changed(old: Deployment, new: Deployment) -> bool:
    """Pod-template-relevant differences (replica-count changes alone
    are handled by plain reconciliation)."""
    def signature(deployment: Deployment):
        return (
            deployment.pod_labels,
            [(c.name, c.image, c.ports, tuple(sorted(c.env.items())),
              c.cpu_request_m, c.memory_request_mi)
             for c in deployment.containers],
            deployment.volumes,
        )
    return signature(old) != signature(new)


class Cluster:
    """A tiny in-memory Kubernetes."""

    def __init__(self, *, nodes: int = 3, cpu_per_node_m: int = 4000,
                 memory_per_node_mi: int = 8192,
                 component_factory: ComponentFactory | None = None):
        self.nodes = [ClusterNode(f"node-{i + 1}", cpu_per_node_m,
                                  memory_per_node_mi)
                      for i in range(nodes)]
        self.config_maps: dict[tuple[str, str], ConfigMap] = {}
        self.deployments: dict[tuple[str, str], Deployment] = {}
        self.services: dict[tuple[str, str], Service] = {}
        self.pods: dict[tuple[str, str], Pod] = {}
        self.component_factory = component_factory
        self.events: list[str] = []
        self._pod_serial = itertools.count(1)

    # -- API surface --------------------------------------------------------

    def apply_manifest(self, manifest: dict) -> object:
        resource = resource_from_manifest(manifest)
        if isinstance(resource, ConfigMap):
            previous = self.config_maps.get(resource.metadata.key)
            self.config_maps[resource.metadata.key] = resource
            self._record(f"configmap/{resource.metadata.name} applied")
            if previous is not None and previous.data != resource.data:
                # a changed ConfigMap rolls every deployment mounting it
                self._roll_mounting_deployments(resource)
        elif isinstance(resource, Deployment):
            previous = self.deployments.get(resource.metadata.key)
            self.deployments[resource.metadata.key] = resource
            self._record(f"deployment/{resource.metadata.name} applied")
            if previous is not None and _deployment_spec_changed(previous,
                                                                 resource):
                self._restart_deployment_pods(resource)
            self._reconcile_deployment(resource)
        elif isinstance(resource, Service):
            self.services[resource.metadata.key] = resource
            self._record(f"service/{resource.metadata.name} applied")
        return resource

    def _roll_mounting_deployments(self, config_map: ConfigMap) -> None:
        for deployment in list(self.deployments.values()):
            if deployment.metadata.namespace != \
                    config_map.metadata.namespace:
                continue
            if config_map.metadata.name in deployment.config_map_names():
                self._record(
                    f"deployment/{deployment.metadata.name} rolling "
                    f"(configmap {config_map.metadata.name} changed)")
                self._restart_deployment_pods(deployment)
                self._reconcile_deployment(deployment)

    def _restart_deployment_pods(self, deployment: Deployment) -> None:
        for pod in self.pods_for(deployment.metadata.name,
                                 deployment.metadata.namespace):
            self._delete_pod(pod)

    def apply_yaml(self, text: str) -> list[object]:
        from ..yamlgen import parse_documents
        return [self.apply_manifest(doc) for doc in parse_documents(text)
                if doc is not None]

    # -- deployment controller ---------------------------------------------------

    def _reconcile_deployment(self, deployment: Deployment) -> None:
        existing = [p for p in self.pods.values()
                    if p.owner == deployment.metadata.name
                    and p.metadata.namespace == deployment.metadata.namespace]
        missing = deployment.replicas - len(existing)
        for _ in range(missing):
            self._create_pod(deployment)
        for pod in existing[deployment.replicas:]:
            self._delete_pod(pod)

    def _create_pod(self, deployment: Deployment) -> Pod:
        name = f"{deployment.metadata.name}-{next(self._pod_serial):04d}"
        pod = Pod(
            metadata=Metadata(name=name,
                              namespace=deployment.metadata.namespace,
                              labels=dict(deployment.pod_labels)),
            labels=dict(deployment.pod_labels),
            containers=list(deployment.containers),
            owner=deployment.metadata.name,
        )
        pod.config = self._mounted_config(deployment)
        self.pods[pod.metadata.key] = pod
        self._schedule(pod)
        return pod

    def _mounted_config(self, deployment: Deployment) -> dict | None:
        import json
        for config_map_name in deployment.config_map_names():
            key = (deployment.metadata.namespace, config_map_name)
            config_map = self.config_maps.get(key)
            if config_map is None:
                raise ClusterError(
                    f"deployment {deployment.metadata.name!r} mounts "
                    f"missing ConfigMap {config_map_name!r}")
            raw = config_map.data.get("config.json")
            if raw is not None:
                try:
                    return json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ClusterError(
                        f"ConfigMap {config_map_name!r} holds invalid "
                        f"JSON: {exc}") from exc
        return None

    # -- scheduler -------------------------------------------------------------------

    def _schedule(self, pod: Pod) -> None:
        candidates = [n for n in self.nodes if n.fits(pod)]
        if not candidates:
            self._record(f"pod/{pod.metadata.name} unschedulable")
            pod.phase = "Pending"
            return
        node = min(candidates, key=lambda n: (n.cpu_used_m, n.name))
        node.pods.append(pod)
        pod.node = node.name
        self._start_component(pod)

    def _start_component(self, pod: Pod) -> None:
        if self.component_factory is None:
            pod.phase = "Running"
            self._record(f"pod/{pod.metadata.name} running on {pod.node}")
            return
        kind = pod.labels.get("component", "")
        try:
            component = self.component_factory(pod, kind, pod.config)
            start = getattr(component, "start", None)
            if callable(start):
                start()
            pod.component = component
            pod.phase = "Running"
            self._record(f"pod/{pod.metadata.name} running on {pod.node}")
        except Exception as exc:  # component crash -> CrashLoopBackOff-ish
            pod.phase = "Failed"
            self._record(f"pod/{pod.metadata.name} failed: {exc}")

    def _delete_pod(self, pod: Pod) -> None:
        component = pod.component
        stop = getattr(component, "stop", None)
        if callable(stop):
            stop()
        for node in self.nodes:
            if pod in node.pods:
                node.pods.remove(pod)
        self.pods.pop(pod.metadata.key, None)
        self._record(f"pod/{pod.metadata.name} deleted")

    # -- failure injection / healing ------------------------------------------------------

    def fail_node(self, node_name: str) -> list[str]:
        """Take a node offline; its pods are stopped and deleted.

        Returns the names of the evicted pods. Deployments are NOT
        reconciled automatically — call :meth:`reconcile_all` (or
        :func:`repro.k8s.deploy.heal`) to reschedule.
        """
        node = next((n for n in self.nodes if n.name == node_name), None)
        if node is None:
            raise ClusterError(f"no node named {node_name!r}")
        node.offline = True
        evicted = [p.metadata.name for p in list(node.pods)]
        for pod in list(node.pods):
            self._delete_pod(pod)
        self._record(f"node/{node_name} failed; evicted {len(evicted)} "
                     f"pod(s)")
        return evicted

    def recover_node(self, node_name: str) -> None:
        node = next((n for n in self.nodes if n.name == node_name), None)
        if node is None:
            raise ClusterError(f"no node named {node_name!r}")
        node.offline = False
        self._record(f"node/{node_name} recovered")

    def delete_pod(self, name: str, namespace: str = "default") -> None:
        """Delete one pod (kubectl delete pod); controller re-creates it
        on the next reconcile."""
        pod = self.pods.get((namespace, name))
        if pod is None:
            raise ClusterError(f"no pod {name!r} in {namespace!r}")
        self._delete_pod(pod)

    def reconcile_all(self, *, order=None) -> None:
        """Bring every deployment back to its replica count.

        *order* is an optional key function over deployments controlling
        the re-creation order (servers before the clients that dial
        them).
        """
        deployments = list(self.deployments.values())
        if order is not None:
            deployments.sort(key=order)
        for deployment in deployments:
            self._reconcile_deployment(deployment)

    def restart_pods(self, *, component: str | None = None) -> int:
        """Delete (and thus restart via reconcile) pods of a component
        kind; returns how many were deleted."""
        doomed = [p for p in self.pods.values()
                  if component is None
                  or p.labels.get("component") == component]
        for pod in doomed:
            self._delete_pod(pod)
        return len(doomed)

    # -- queries --------------------------------------------------------------------------

    def pods_for(self, deployment_name: str,
                 namespace: str = "default") -> list[Pod]:
        return [p for p in self.pods.values()
                if p.owner == deployment_name
                and p.metadata.namespace == namespace]

    def endpoints(self, service_name: str,
                  namespace: str = "default") -> list[Pod]:
        service = self.services.get((namespace, service_name))
        if service is None:
            raise ClusterError(f"no service {service_name!r} in "
                               f"{namespace!r}")
        return [p for p in self.pods.values()
                if p.metadata.namespace == namespace
                and all(p.labels.get(k) == v
                        for k, v in service.selector.items())]

    def running_pods(self) -> list[Pod]:
        return [p for p in self.pods.values() if p.phase == "Running"]

    def pending_pods(self) -> list[Pod]:
        return [p for p in self.pods.values() if p.phase == "Pending"]

    def failed_pods(self) -> list[Pod]:
        return [p for p in self.pods.values() if p.phase == "Failed"]

    def shutdown(self) -> None:
        for pod in list(self.pods.values()):
            self._delete_pod(pod)

    def stats(self) -> dict[str, int]:
        return {
            "nodes": len(self.nodes),
            "deployments": len(self.deployments),
            "services": len(self.services),
            "config_maps": len(self.config_maps),
            "pods_running": len(self.running_pods()),
            "pods_pending": len(self.pending_pods()),
            "pods_failed": len(self.failed_pods()),
        }

    def _record(self, event: str) -> None:
        self.events.append(event)
