"""Kubernetes resource object model (the subset the pipeline generates).

Manifest dictionaries (from :mod:`repro.yamlgen`) are parsed into typed
resources: ConfigMap, Deployment, Service — plus the Pods the deployment
controller creates. Validation mirrors what a real API server would
reject (missing names, bad label selectors, unparseable quantities).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ResourceError(ValueError):
    pass


def parse_cpu(quantity: str | int | float) -> int:
    """Parse a CPU quantity into millicores ('100m' -> 100, '1' -> 1000)."""
    if isinstance(quantity, (int, float)):
        return int(quantity * 1000)
    text = str(quantity).strip()
    try:
        if text.endswith("m"):
            return int(text[:-1])
        return int(float(text) * 1000)
    except ValueError:
        raise ResourceError(f"bad cpu quantity {quantity!r}") from None


def parse_memory(quantity: str | int) -> int:
    """Parse a memory quantity into MiB ('128Mi' -> 128, '1Gi' -> 1024)."""
    if isinstance(quantity, int):
        return quantity
    text = str(quantity).strip()
    units = {"Ki": 1 / 1024, "Mi": 1, "Gi": 1024, "Ti": 1024 * 1024}
    for unit, factor in units.items():
        if text.endswith(unit):
            try:
                return int(float(text[:-len(unit)]) * factor)
            except ValueError:
                raise ResourceError(
                    f"bad memory quantity {quantity!r}") from None
    try:
        return int(int(text) / (1024 * 1024))  # plain bytes
    except ValueError:
        raise ResourceError(f"bad memory quantity {quantity!r}") from None


@dataclass
class Metadata:
    name: str
    namespace: str = "default"
    labels: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "Metadata":
        if not data.get("name"):
            raise ResourceError("resource metadata has no name")
        return cls(name=data["name"],
                   namespace=data.get("namespace", "default"),
                   labels=dict(data.get("labels", {})))

    @property
    def key(self) -> tuple[str, str]:
        return (self.namespace, self.name)


@dataclass
class ConfigMap:
    metadata: Metadata
    data: dict[str, str]

    kind = "ConfigMap"

    @classmethod
    def from_dict(cls, manifest: dict) -> "ConfigMap":
        return cls(Metadata.from_dict(manifest.get("metadata", {})),
                   dict(manifest.get("data", {}) or {}))


@dataclass
class Container:
    name: str
    image: str
    ports: list[int] = field(default_factory=list)
    env: dict[str, str] = field(default_factory=dict)
    cpu_request_m: int = 0
    memory_request_mi: int = 0
    volume_mounts: list[dict] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: dict) -> "Container":
        if not data.get("name") or not data.get("image"):
            raise ResourceError("container needs name and image")
        requests = (data.get("resources", {}) or {}).get("requests", {}) or {}
        return cls(
            name=data["name"],
            image=data["image"],
            ports=[p.get("containerPort") for p in data.get("ports", []) or []
                   if p.get("containerPort")],
            env={e["name"]: str(e.get("value", ""))
                 for e in data.get("env", []) or []},
            cpu_request_m=parse_cpu(requests.get("cpu", 0)),
            memory_request_mi=parse_memory(requests.get("memory", 0)),
            volume_mounts=list(data.get("volumeMounts", []) or []),
        )


@dataclass
class Deployment:
    metadata: Metadata
    replicas: int
    selector: dict[str, str]
    pod_labels: dict[str, str]
    containers: list[Container]
    volumes: list[dict] = field(default_factory=list)

    kind = "Deployment"

    @classmethod
    def from_dict(cls, manifest: dict) -> "Deployment":
        metadata = Metadata.from_dict(manifest.get("metadata", {}))
        spec = manifest.get("spec", {}) or {}
        selector = (spec.get("selector", {}) or {}).get("matchLabels", {})
        if not selector:
            raise ResourceError(
                f"deployment {metadata.name!r} has no matchLabels selector")
        template = spec.get("template", {}) or {}
        pod_labels = (template.get("metadata", {}) or {}).get("labels", {})
        if not all(pod_labels.get(k) == v for k, v in selector.items()):
            raise ResourceError(
                f"deployment {metadata.name!r}: selector does not match "
                f"pod template labels")
        pod_spec = template.get("spec", {}) or {}
        containers = [Container.from_dict(c)
                      for c in pod_spec.get("containers", []) or []]
        if not containers:
            raise ResourceError(
                f"deployment {metadata.name!r} has no containers")
        return cls(metadata=metadata,
                   replicas=int(spec.get("replicas", 1)),
                   selector=dict(selector),
                   pod_labels=dict(pod_labels),
                   containers=containers,
                   volumes=list(pod_spec.get("volumes", []) or []))

    def config_map_names(self) -> list[str]:
        names = []
        for volume in self.volumes:
            config_map = volume.get("configMap") or {}
            if config_map.get("name"):
                names.append(config_map["name"])
        return names

    @property
    def cpu_request_m(self) -> int:
        return sum(c.cpu_request_m for c in self.containers)

    @property
    def memory_request_mi(self) -> int:
        return sum(c.memory_request_mi for c in self.containers)


@dataclass
class Service:
    metadata: Metadata
    selector: dict[str, str]
    ports: list[tuple[int, int]]  # (port, targetPort)

    kind = "Service"

    @classmethod
    def from_dict(cls, manifest: dict) -> "Service":
        metadata = Metadata.from_dict(manifest.get("metadata", {}))
        spec = manifest.get("spec", {}) or {}
        selector = spec.get("selector", {}) or {}
        if not selector:
            raise ResourceError(
                f"service {metadata.name!r} has no selector")
        ports = [(p.get("port"), p.get("targetPort", p.get("port")))
                 for p in spec.get("ports", []) or []]
        return cls(metadata=metadata, selector=dict(selector), ports=ports)


@dataclass
class Pod:
    metadata: Metadata
    labels: dict[str, str]
    containers: list[Container]
    owner: str  # deployment name
    config: dict | None = None  # parsed config.json from the ConfigMap
    phase: str = "Pending"  # Pending | Running | Failed
    node: str | None = None
    component: object | None = None  # the simulated software instance

    kind = "Pod"

    @property
    def cpu_request_m(self) -> int:
        return sum(c.cpu_request_m for c in self.containers)

    @property
    def memory_request_mi(self) -> int:
        return sum(c.memory_request_mi for c in self.containers)


_KINDS = {"ConfigMap": ConfigMap, "Deployment": Deployment,
          "Service": Service}


def resource_from_manifest(manifest: dict):
    """Typed resource from one manifest dict."""
    if not isinstance(manifest, dict):
        raise ResourceError(f"manifest must be a mapping, got "
                            f"{type(manifest).__name__}")
    kind = manifest.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        raise ResourceError(f"unsupported resource kind {kind!r}")
    return cls.from_dict(manifest)
