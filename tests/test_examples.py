"""Every example script must run to completion (deliverable check)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship six
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_output_shape(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "model is well-formed" in out or "no findings" in out
    assert "OPC UA server" in out


def test_full_deployment_reports_success(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["icelab_full_deployment.py"])
    runpy.run_path(str(EXAMPLES_DIR / "icelab_full_deployment.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "deployment SUCCESSFUL" in out
    assert "OPC UA servers: 6" in out
