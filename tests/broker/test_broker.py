"""Message broker and client tests."""

import pytest

from repro.broker import (BrokerClient, BrokerError, MessageBroker,
                          TopicError)


@pytest.fixture
def broker():
    return MessageBroker()


class TestPublishSubscribe:
    def test_handler_receives_message(self, broker):
        seen = []
        broker.subscribe("c1", "a/b", lambda t, p: seen.append((t, p)))
        receivers = broker.publish("a/b", {"x": 1})
        assert receivers == 1
        assert seen == [("a/b", {"x": 1})]

    def test_non_matching_not_delivered(self, broker):
        seen = []
        broker.subscribe("c1", "a/b", lambda t, p: seen.append(p))
        broker.publish("a/c", 1)
        assert seen == []

    def test_wildcard_subscription(self, broker):
        seen = []
        broker.subscribe("c1", "factory/+/data/#",
                         lambda t, p: seen.append(t))
        broker.publish("factory/emco/data/x", 1)
        broker.publish("factory/ur5/data/deep/y", 2)
        broker.publish("factory/emco/status", 3)
        assert seen == ["factory/emco/data/x", "factory/ur5/data/deep/y"]

    def test_multiple_subscribers(self, broker):
        counts = {"a": 0, "b": 0}
        broker.subscribe("a", "t", lambda t, p: counts.__setitem__(
            "a", counts["a"] + 1))
        broker.subscribe("b", "t", lambda t, p: counts.__setitem__(
            "b", counts["b"] + 1))
        assert broker.publish("t", None) == 2
        assert counts == {"a": 1, "b": 1}

    def test_publish_validates_topic(self, broker):
        with pytest.raises(TopicError):
            broker.publish("bad/+/topic", 1)

    def test_queue_mode_poll(self, broker):
        sid = broker.subscribe("c1", "q/t")
        broker.publish("q/t", "one")
        broker.publish("q/t", "two")
        messages = broker.poll(sid)
        assert [m.payload for m in messages] == ["one", "two"]
        assert broker.poll(sid) == []

    def test_poll_max_messages(self, broker):
        sid = broker.subscribe("c1", "q/t")
        for i in range(5):
            broker.publish("q/t", i)
        assert len(broker.poll(sid, max_messages=2)) == 2
        assert len(broker.poll(sid)) == 3

    def test_poll_unknown_subscription(self, broker):
        with pytest.raises(BrokerError):
            broker.poll(999)

    def test_sequence_numbers_increase(self, broker):
        sid = broker.subscribe("c1", "t")
        broker.publish("t", "a")
        broker.publish("t", "b")
        first, second = broker.poll(sid)
        assert second.sequence > first.sequence


class TestRetained:
    def test_retained_delivered_on_subscribe(self, broker):
        broker.publish("state/mode", "auto", retain=True)
        seen = []
        broker.subscribe("late", "state/#", lambda t, p: seen.append(p))
        assert seen == ["auto"]

    def test_retained_replaced(self, broker):
        broker.publish("s", 1, retain=True)
        broker.publish("s", 2, retain=True)
        assert broker.retained("s").payload == 2

    def test_retained_opt_out(self, broker):
        broker.publish("s", 1, retain=True)
        seen = []
        broker.subscribe("c", "s", lambda t, p: seen.append(p),
                         receive_retained=False)
        assert seen == []

    def test_clear_retained(self, broker):
        broker.publish("s", 1, retain=True)
        broker.clear_retained("s")
        assert broker.retained("s") is None


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self, broker):
        seen = []
        sid = broker.subscribe("c1", "t", lambda t, p: seen.append(p))
        broker.unsubscribe(sid)
        broker.publish("t", 1)
        assert seen == []

    def test_unsubscribe_client_drops_all(self, broker):
        broker.subscribe("c1", "a")
        broker.subscribe("c1", "b")
        broker.subscribe("c2", "c")
        assert broker.unsubscribe_client("c1") == 2
        assert broker.subscription_count == 1

    def test_stats(self, broker):
        broker.subscribe("c1", "t", lambda t, p: None)
        broker.publish("t", 1)
        stats = broker.stats()
        assert stats["published"] == 1
        assert stats["delivered"] == 1
        assert stats["subscriptions"] == 1


class TestBrokerClient:
    def test_publish_subscribe_roundtrip(self, broker):
        client_a = BrokerClient(broker, "a")
        client_b = BrokerClient(broker, "b")
        seen = []
        client_b.subscribe("chat/#", lambda t, p: seen.append(p))
        client_a.publish("chat/hello", "hi")
        assert seen == ["hi"]

    def test_disconnect_cleans_subscriptions(self, broker):
        client = BrokerClient(broker, "a")
        client.subscribe("t")
        client.disconnect()
        assert broker.subscription_count == 0

    def test_disconnected_client_raises(self, broker):
        client = BrokerClient(broker, "a")
        client.disconnect()
        with pytest.raises(BrokerError):
            client.publish("t", 1)

    def test_request_reply(self, broker):
        server = BrokerClient(broker, "server")
        client = BrokerClient(broker, "client")
        server.serve("svc/echo",
                     lambda topic, req: {"echo": req["message"]})
        reply = client.request("svc/echo", {"message": "ping"})
        assert reply == {"echo": "ping"}

    def test_request_without_responder_raises(self, broker):
        client = BrokerClient(broker, "client")
        with pytest.raises(BrokerError, match="no responder"):
            client.request("svc/none", {})

    def test_request_reply_does_not_leak_subscriptions(self, broker):
        server = BrokerClient(broker, "server")
        client = BrokerClient(broker, "client")
        server.serve("svc/echo", lambda topic, req: "ok")
        before = broker.subscription_count
        client.request("svc/echo", {})
        assert broker.subscription_count == before

    def test_two_requests_get_distinct_replies(self, broker):
        server = BrokerClient(broker, "server")
        client = BrokerClient(broker, "client")
        server.serve("svc/inc", lambda t, req: req["n"] + 1)
        assert client.request("svc/inc", {"n": 1}) == 2
        assert client.request("svc/inc", {"n": 10}) == 11
