"""Topic validation and wildcard matching tests."""

import pytest

from repro.broker import (TopicError, join, topic_matches, validate_filter,
                          validate_topic)


class TestValidateTopic:
    def test_simple_topic_ok(self):
        validate_topic("icelab/wc02/emco/data/actualX")

    def test_single_level_ok(self):
        validate_topic("status")

    def test_empty_rejected(self):
        with pytest.raises(TopicError):
            validate_topic("")

    def test_leading_slash_rejected(self):
        with pytest.raises(TopicError):
            validate_topic("/a/b")

    def test_trailing_slash_rejected(self):
        with pytest.raises(TopicError):
            validate_topic("a/b/")

    def test_empty_level_rejected(self):
        with pytest.raises(TopicError):
            validate_topic("a//b")

    def test_wildcards_rejected_in_publish_topic(self):
        with pytest.raises(TopicError):
            validate_topic("a/+/b")
        with pytest.raises(TopicError):
            validate_topic("a/#")


class TestValidateFilter:
    def test_plus_level_ok(self):
        validate_filter("a/+/c")

    def test_trailing_hash_ok(self):
        validate_filter("a/b/#")

    def test_hash_alone_ok(self):
        validate_filter("#")

    def test_hash_not_final_rejected(self):
        with pytest.raises(TopicError):
            validate_filter("a/#/b")

    def test_partial_wildcard_rejected(self):
        with pytest.raises(TopicError):
            validate_filter("a/b+/c")

    def test_empty_rejected(self):
        with pytest.raises(TopicError):
            validate_filter("")


class TestMatching:
    @pytest.mark.parametrize("pattern,topic,expected", [
        ("a/b/c", "a/b/c", True),
        ("a/b/c", "a/b/d", False),
        ("a/+/c", "a/b/c", True),
        ("a/+/c", "a/x/c", True),
        ("a/+/c", "a/b/c/d", False),
        ("a/#", "a/b/c/d", True),
        # MQTT semantics: the '#' also matches the parent level itself
        ("a/#", "a", True),
        ("a/b/#", "a", False),
        ("#", "anything/at/all", True),
        ("+", "one", True),
        ("+", "one/two", False),
        ("a/+/+/d", "a/b/c/d", True),
        ("a/b", "a/b/c", False),
        ("a/b/c", "a/b", False),
    ])
    def test_matrix(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestJoin:
    def test_join_levels(self):
        assert join("icelab", "wc02", "emco") == "icelab/wc02/emco"

    def test_join_validates(self):
        with pytest.raises(TopicError):
            join("a", "", "b")
