"""Property-based tests for topic matching and broker delivery."""

import string

from hypothesis import given, settings, strategies as st

from repro.broker import (MessageBroker, topic_matches, validate_filter,
                          validate_topic)

levels = st.text(string.ascii_lowercase + string.digits, min_size=1,
                 max_size=6)
topics = st.lists(levels, min_size=1, max_size=6).map("/".join)


@st.composite
def topic_and_matching_filter(draw):
    """A topic plus a filter derived from it that must match."""
    topic_levels = draw(st.lists(levels, min_size=1, max_size=6))
    filter_levels = []
    for index, level in enumerate(topic_levels):
        choice = draw(st.integers(0, 3))
        if choice == 0 and index > 0:  # '#' not very interesting first
            filter_levels.append("#")
            break
        if choice == 1:
            filter_levels.append("+")
        else:
            filter_levels.append(level)
    return "/".join(topic_levels), "/".join(filter_levels)


@settings(max_examples=200, deadline=None)
@given(topics)
def test_exact_filter_always_matches_itself(topic):
    validate_topic(topic)
    assert topic_matches(topic, topic)


@settings(max_examples=200, deadline=None)
@given(topic_and_matching_filter())
def test_derived_filters_match(pair):
    topic, topic_filter = pair
    validate_topic(topic)
    validate_filter(topic_filter)
    assert topic_matches(topic_filter, topic)


@settings(max_examples=200, deadline=None)
@given(topics, topics)
def test_exact_filter_matches_only_equal_topics(filter_topic, topic):
    assert topic_matches(filter_topic, topic) == (filter_topic == topic)


@settings(max_examples=100, deadline=None)
@given(st.lists(topics, min_size=1, max_size=20, unique=True))
def test_hash_filter_receives_everything(all_topics):
    broker = MessageBroker()
    seen = []
    broker.subscribe("all", "#", lambda t, p: seen.append(t))
    for topic in all_topics:
        broker.publish(topic, None)
    assert seen == all_topics


@settings(max_examples=100, deadline=None)
@given(st.lists(topics, min_size=1, max_size=15))
def test_delivery_count_equals_matching_subscriptions(publish_topics):
    broker = MessageBroker()
    filters = ["#", "+", publish_topics[0]]
    for index, topic_filter in enumerate(filters):
        broker.subscribe(f"c{index}", topic_filter, lambda t, p: None)
    for topic in publish_topics:
        expected = sum(1 for f in filters if topic_matches(f, topic))
        assert broker.publish(topic, None) == expected


@settings(max_examples=100, deadline=None)
@given(topics, st.integers(0, 30))
def test_queue_preserves_order(topic, count):
    broker = MessageBroker()
    sid = broker.subscribe("c", topic)
    for index in range(count):
        broker.publish(topic, index)
    assert [m.payload for m in broker.poll(sid)] == list(range(count))


@settings(max_examples=60, deadline=None)
@given(topics)
def test_retained_message_replayed_to_late_subscriber(topic):
    broker = MessageBroker()
    broker.publish(topic, "state", retain=True)
    seen = []
    broker.subscribe("late", "#", lambda t, p: seen.append((t, p)))
    assert seen == [(topic, "state")]
