"""Oracle registry: every oracle passes on valid scenarios and trips
on injected bugs."""

import pytest

import repro.sysml.printer as printer_module
from repro.testkit import (ORACLES, CorpusConfig, OracleFailure,
                           TrialContext, generate_scenario, oracle_names,
                           run_oracle)

EXPECTED = ["roundtrip", "interchange", "cache", "jobs", "serve",
            "incremental", "grouping", "sim", "plan", "sharded"]


class TestRegistry:
    def test_all_expected_oracles_registered(self):
        assert oracle_names() == EXPECTED

    def test_unknown_oracle_raises(self):
        ctx = TrialContext(scenario=generate_scenario(0))
        with pytest.raises(KeyError, match="unknown oracle"):
            run_oracle("nope", ctx)

    def test_front_end_oracles_are_source_level(self):
        assert ORACLES["roundtrip"].source_level
        assert ORACLES["interchange"].source_level
        assert not ORACLES["cache"].source_level


class TestOraclesPass:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_all_oracles_pass_tame(self, seed):
        ctx = TrialContext(scenario=generate_scenario(seed))
        for name in oracle_names():
            run_oracle(name, ctx)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_all_oracles_pass_hostile(self, seed):
        ctx = TrialContext(
            scenario=generate_scenario(seed, CorpusConfig(hostile=True)))
        for name in oracle_names():
            run_oracle(name, ctx)


class TestOraclesTrip:
    def test_roundtrip_catches_broken_quoting(self, monkeypatch):
        monkeypatch.setattr(printer_module, "format_name",
                            lambda name: name)
        ctx = TrialContext(
            scenario=generate_scenario(0, CorpusConfig(hostile=True)))
        with pytest.raises(OracleFailure):
            run_oracle("roundtrip", ctx)

    def test_context_requires_input(self):
        with pytest.raises(ValueError):
            TrialContext()

    def test_context_accepts_bare_sources(self):
        ctx = TrialContext(sources=["part def X;"])
        run_oracle("roundtrip", ctx)
        run_oracle("interchange", ctx)
