"""Bounded-wait helpers."""

import threading

import pytest

from repro.testkit import Deadline, wait_for_event, wait_until
from repro.testkit import waiting


class _ScriptedTime:
    """Stand-in for the ``time`` module with a scripted monotonic clock."""

    def __init__(self, times):
        self._times = iter(times)
        self._last = 0.0
        self.sleeps = []

    def monotonic(self):
        try:
            self._last = next(self._times)
        except StopIteration:
            pass
        return self._last

    def sleep(self, seconds):
        self.sleeps.append(seconds)


class TestWaitUntil:
    def test_returns_truthy_value(self):
        assert wait_until(lambda: 42, timeout=1.0) == 42

    def test_polls_until_condition_holds(self):
        state = {"calls": 0}

        def predicate():
            state["calls"] += 1
            return state["calls"] >= 3

        assert wait_until(predicate, timeout=2.0, interval=0.001)
        assert state["calls"] == 3

    def test_timeout_raises_with_message(self):
        with pytest.raises(TimeoutError, match="database row"):
            wait_until(lambda: False, timeout=0.05, interval=0.01,
                       message="database row")

    def test_final_check_at_deadline(self):
        deadline = Deadline(0.0)  # already expired
        assert deadline.expired
        assert wait_until(lambda: True, timeout=0.0)

    def test_never_sleeps_past_the_deadline(self, monkeypatch):
        # regression: the deadline reads "not yet expired", but by the
        # time the sleep length is computed the remaining budget is
        # exactly 0.0 — the old `remaining() or interval` then slept a
        # *full* interval past the deadline before re-checking
        fake = _ScriptedTime([
            0.0,    # Deadline(): expires at 1.0
            0.999,  # expired-check: still before the deadline
            1.0,    # remaining(): budget is exactly 0.0
            1.0,    # expired-check next iteration: expired
        ])
        monkeypatch.setattr(waiting, "time", fake)
        with pytest.raises(TimeoutError):
            wait_until(lambda: False, timeout=1.0, interval=0.5)
        assert fake.sleeps == [0.0]  # clamped, not a 0.5s oversleep


class TestWaitForEvent:
    def test_set_event_returns(self):
        event = threading.Event()
        event.set()
        wait_for_event(event, timeout=1.0)

    def test_unset_event_times_out(self):
        with pytest.raises(TimeoutError, match="worker start"):
            wait_for_event(threading.Event(), timeout=0.05,
                           message="worker start")


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired

    def test_zero_deadline_expired(self):
        assert Deadline(0.0).remaining() == 0.0
