"""Bounded-wait helpers."""

import threading

import pytest

from repro.testkit import Deadline, wait_for_event, wait_until


class TestWaitUntil:
    def test_returns_truthy_value(self):
        assert wait_until(lambda: 42, timeout=1.0) == 42

    def test_polls_until_condition_holds(self):
        state = {"calls": 0}

        def predicate():
            state["calls"] += 1
            return state["calls"] >= 3

        assert wait_until(predicate, timeout=2.0, interval=0.001)
        assert state["calls"] == 3

    def test_timeout_raises_with_message(self):
        with pytest.raises(TimeoutError, match="database row"):
            wait_until(lambda: False, timeout=0.05, interval=0.01,
                       message="database row")

    def test_final_check_at_deadline(self):
        deadline = Deadline(0.0)  # already expired
        assert deadline.expired
        assert wait_until(lambda: True, timeout=0.0)


class TestWaitForEvent:
    def test_set_event_returns(self):
        event = threading.Event()
        event.set()
        wait_for_event(event, timeout=1.0)

    def test_unset_event_times_out(self):
        with pytest.raises(TimeoutError, match="worker start"):
            wait_for_event(threading.Event(), timeout=0.05,
                           message="worker start")


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired

    def test_zero_deadline_expired(self):
        assert Deadline(0.0).remaining() == 0.0
