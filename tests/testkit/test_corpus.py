"""Corpus generator: determinism, validity, hostile coverage."""

import pytest

from repro.sysml import load_model
from repro.sysml.printer import _is_plain_identifier
from repro.testkit import CorpusConfig, generate_scenario
from repro.testkit.corpus import _sanitized

TAME = CorpusConfig()
HOSTILE = CorpusConfig(hostile=True)


class TestDeterminism:
    @pytest.mark.parametrize("config", [TAME, HOSTILE],
                             ids=["tame", "hostile"])
    def test_same_seed_same_sources(self, config):
        for seed in (0, 7, 123456):
            assert (generate_scenario(seed, config).sources
                    == generate_scenario(seed, config).sources)

    def test_different_seeds_differ(self):
        assert (generate_scenario(1, TAME).sources
                != generate_scenario(2, TAME).sources)

    def test_config_changes_output(self):
        small = CorpusConfig(min_machines=1, max_machines=1)
        assert len(generate_scenario(5, small).specs) == 1


class TestValidity:
    @pytest.mark.parametrize("config", [TAME, HOSTILE],
                             ids=["tame", "hostile"])
    def test_scenarios_load(self, config):
        for seed in range(12):
            scenario = generate_scenario(seed, config)
            model = load_model(*scenario.sources)
            assert model.owned_elements

    def test_machine_names_unique(self):
        for seed in range(20):
            scenario = generate_scenario(seed, HOSTILE)
            names = [spec.name for spec in scenario.specs]
            assert len(names) == len(set(names))

    def test_structural_names_sanitize(self):
        """Machine/workcell names must map to distinct DNS labels."""
        for seed in range(20):
            scenario = generate_scenario(seed, HOSTILE)
            labels = [_sanitized(spec.name) for spec in scenario.specs]
            assert all(labels), scenario.describe()
            assert len(labels) == len(set(labels))


class TestHostileCoverage:
    def test_hostile_names_actually_appear(self):
        """Across a modest seed range, some generated name must need
        quoting — otherwise the hostile mode tests nothing."""
        quoted = 0
        for seed in range(20):
            scenario = generate_scenario(seed, HOSTILE)
            for spec in scenario.specs:
                names = ([spec.name]
                         + [v.name for v in spec.variables]
                         + [s.name for s in spec.services])
                quoted += sum(1 for name in names
                              if not _is_plain_identifier(name))
        assert quoted > 5

    def test_tame_mode_stays_plain(self):
        for seed in range(10):
            scenario = generate_scenario(seed, TAME)
            for spec in scenario.specs:
                assert _is_plain_identifier(spec.name)
