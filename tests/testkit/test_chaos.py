"""The opt-in chaos oracle: graceful degradation under a seeded plan."""

from repro.testkit import (CorpusConfig, chaos_plan, oracle_names,
                           run_conformance, run_trial)

SMALL = CorpusConfig(max_machines=2, max_variables=4, max_services=2)


class TestRegistry:
    def test_chaos_is_opt_in(self):
        assert "chaos" not in oracle_names()
        assert "chaos" in oracle_names(include_opt_in=True)


class TestChaosOracle:
    def test_trial_survives_the_fault_plan(self):
        result = run_trial(0, config=SMALL, oracles=["chaos"])
        assert result.ok, [outcome.error for outcome in result.failures]

    def test_plan_is_seed_deterministic(self):
        assert chaos_plan(3).specs == chaos_plan(3).specs
        assert chaos_plan(3).seed == 3 and chaos_plan(4).seed == 4


class TestChaosConformance:
    def test_chaos_flag_appends_the_oracle(self):
        report = run_conformance(1, config=SMALL, oracles=["grouping"],
                                 shrink=False, chaos=True)
        assert report.oracles == ["grouping", "chaos"]
        assert report.ok, report.to_dict()["trials"]

    def test_digest_stable_across_jobs(self):
        # per-trial plans share no state, so fan-out must not perturb
        # the semantic outcome (the ISSUE acceptance criterion)
        one = run_conformance(2, config=SMALL, oracles=["chaos"],
                              jobs=1, shrink=False)
        two = run_conformance(2, config=SMALL, oracles=["chaos"],
                              jobs=2, shrink=False)
        assert one.ok and two.ok
        assert one.digest == two.digest
