"""Conformance harness: parallel trials, deterministic digest, crash
corpus integration."""

import json

import pytest

import repro.sysml.printer as printer_module
from repro.obs import METRICS
from repro.testkit import CorpusConfig, run_conformance, run_trial

SMALL = CorpusConfig(max_machines=2, max_variables=4, max_services=2)


class TestRunTrial:
    def test_all_oracles_recorded(self):
        result = run_trial(0, config=SMALL)
        assert result.ok
        assert [outcome.name for outcome in result.outcomes] == [
            "roundtrip", "interchange", "cache", "jobs", "serve",
            "incremental", "grouping", "sim", "plan", "sharded"]

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            run_trial(0, oracles=["bogus"])

    def test_oracle_subset(self):
        result = run_trial(1, config=SMALL, oracles=["roundtrip"])
        assert [outcome.name for outcome in result.outcomes] == [
            "roundtrip"]


class TestReport:
    def test_digest_deterministic_across_jobs(self):
        one = run_conformance(4, config=SMALL, jobs=1, shrink=False)
        four = run_conformance(4, config=SMALL, jobs=4, shrink=False)
        assert one.ok and four.ok
        assert one.digest == four.digest

    def test_digest_covers_base_seed(self):
        a = run_conformance(2, base_seed=0, config=SMALL, shrink=False)
        b = run_conformance(2, base_seed=100, config=SMALL, shrink=False)
        assert a.digest != b.digest

    def test_report_shape(self):
        report = run_conformance(2, config=SMALL, oracles=["grouping"],
                                 shrink=False)
        data = report.to_dict()
        assert data["schema"] == "repro/conformance-report/1"
        assert data["ok"] is True
        assert data["seeds"] == 2
        assert data["oracles"] == ["grouping"]
        assert data["oracle_stats"]["grouping"]["runs"] == 2
        assert len(data["trials"]) == 2
        json.dumps(data)  # JSON-serializable end to end

    def test_metrics_folded_in(self):
        before = METRICS.counter("conformance.trials").value
        run_conformance(2, config=SMALL, oracles=["grouping"],
                        shrink=False)
        assert METRICS.counter("conformance.trials").value == before + 2


class TestFailurePath:
    def test_failures_shrink_into_crash_dir(self, monkeypatch, tmp_path):
        monkeypatch.setattr(printer_module, "format_name",
                            lambda name: name)
        crash = tmp_path / "crash"
        report = run_conformance(
            1, config=CorpusConfig(hostile=True),
            oracles=["roundtrip"], crash_dir=crash)
        assert not report.ok
        assert report.failure_count == 1
        assert report.reproducers
        reproducer = report.reproducers[0]
        assert reproducer.path is not None and reproducer.path.exists()
        assert reproducer.line_count <= 15
        assert report.to_dict()["reproducers"][0]["lines"] <= 15
