"""Delta-debugging shrinker: ddmin minimality and end-to-end
reduction of an injected printer bug to a tiny reproducer."""

import json

import pytest

import repro.sysml.printer as printer_module
from repro.testkit import (CorpusConfig, ddmin, generate_scenario,
                           shrink_failure, write_reproducer)


class TestDdmin:
    def test_reduces_to_interacting_pair(self):
        result = ddmin(list(range(50)),
                       lambda items: 3 in items and 41 in items)
        assert sorted(result) == [3, 41]

    def test_single_culprit(self):
        assert ddmin(list(range(100)), lambda items: 37 in items) == [37]

    def test_requires_failing_start(self):
        with pytest.raises(ValueError):
            ddmin([1, 2, 3], lambda items: False)

    def test_result_is_one_minimal(self):
        predicate = lambda items: sum(items) >= 10  # noqa: E731
        result = ddmin([7, 5, 2, 9, 1], predicate)
        assert predicate(result)
        for index in range(len(result)):
            assert not predicate(result[:index] + result[index + 1:])


class TestShrinkFailure:
    def test_requires_a_failing_scenario(self):
        scenario = generate_scenario(0)
        with pytest.raises(ValueError, match="does not fail"):
            shrink_failure(scenario, "roundtrip")

    def test_injected_printer_bug_shrinks_small(self, monkeypatch,
                                                tmp_path):
        """The acceptance bar: an injected quoting bug must reduce to a
        reproducer of at most 15 lines."""
        monkeypatch.setattr(printer_module, "format_name",
                            lambda name: name)
        scenario = generate_scenario(0, CorpusConfig(hostile=True))
        reproducer = shrink_failure(scenario, "roundtrip")
        assert reproducer.line_count <= 15, reproducer.source
        assert reproducer.error

        filed = write_reproducer(reproducer, tmp_path / "crash")
        assert filed.path.exists()
        meta = json.loads(filed.meta_path.read_text())
        assert meta["oracle"] == "roundtrip"
        assert meta["seed"] == scenario.seed
        assert meta["lines"] == reproducer.line_count

    def test_write_is_idempotent(self, tmp_path, monkeypatch):
        monkeypatch.setattr(printer_module, "format_name",
                            lambda name: name)
        scenario = generate_scenario(0, CorpusConfig(hostile=True))
        reproducer = shrink_failure(scenario, "roundtrip")
        first = write_reproducer(reproducer, tmp_path)
        second = write_reproducer(reproducer, tmp_path)
        assert first.path == second.path
        assert len(list(tmp_path.glob("*.sysml"))) == 1
