"""Property-based invariants of the planning backend (hypothesis)."""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.icelab import icelab_sources  # noqa: E402
from repro.isa95 import extract_topology  # noqa: E402
from repro.planning import (FactoryDomain, build_task,  # noqa: E402
                            emit_problem, solve)
from repro.sim import Workload, generate_workload  # noqa: E402
from repro.sysml import load_model  # noqa: E402

TOPOLOGY = extract_topology(load_model(*icelab_sources()))
DOMAIN = FactoryDomain(TOPOLOGY)


def _task(seed, jobs):
    return build_task(DOMAIN, generate_workload(
        TOPOLOGY, seed=seed, jobs=jobs))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), jobs=st.integers(1, 5),
       planner_seed=st.integers(0, 10_000))
def test_every_plan_step_respects_preconditions(seed, jobs, planner_seed):
    task = _task(seed, jobs)
    state = task.init
    for action in solve(task, seed=planner_seed).actions:
        assert action.pre <= state, action.name
        state = action.apply(state)
    assert task.goal_reached(state)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), jobs=st.integers(1, 5),
       planner_seed=st.integers(0, 10_000))
def test_no_machine_executes_two_steps_at_once(seed, jobs, planner_seed):
    task = _task(seed, jobs)
    busy = {}
    for action in solve(task, seed=planner_seed).actions:
        if action.kind == "start":
            assert action.machine not in busy, (
                f"{action.name}: machine already busy with "
                f"{busy[action.machine]}")
            busy[action.machine] = action.part
        elif action.kind == "complete":
            assert busy.get(action.machine) == action.part, action.name
            del busy[action.machine]
    assert not busy  # every started step completed


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), jobs=st.integers(2, 5))
def test_planner_output_independent_of_job_input_order(seed, jobs):
    workload = generate_workload(TOPOLOGY, seed=seed, jobs=jobs)
    reversed_workload = Workload(list(reversed(workload.jobs)),
                                 machines=workload.machines)
    forward = build_task(DOMAIN, workload)
    backward = build_task(DOMAIN, reversed_workload)
    assert emit_problem(forward, name="p") \
        == emit_problem(backward, name="p")
    assert [a.name for a in solve(forward).actions] \
        == [a.name for a in solve(backward).actions]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), jobs=st.integers(1, 2))
def test_greedy_cost_is_optimal(seed, jobs):
    # uniform-cost is the ground truth but only tractable on small
    # instances; greedy's optimality on them generalizes because the
    # heuristic's monotone-descent argument is size-independent
    task = _task(seed, jobs)
    assert solve(task, strategy="greedy").cost \
        == solve(task, strategy="uniform").cost
