"""Simulator-backed plan validation catches real violations."""

import pytest

from repro.icelab import icelab_sources
from repro.isa95 import extract_topology
from repro.planning import (FactoryDomain, build_simulators, build_task,
                            solve, validate_plan)
from repro.sim import generate_workload
from repro.sysml import load_model


@pytest.fixture(scope="module")
def topology():
    return extract_topology(load_model(*icelab_sources()))


@pytest.fixture(scope="module")
def task(topology):
    domain = FactoryDomain(topology)
    return build_task(domain, generate_workload(topology, seed=7, jobs=4))


@pytest.fixture(scope="module")
def plan(task):
    return solve(task).actions


class TestValidPlans:
    def test_planner_output_replays_cleanly(self, topology, task, plan):
        outcome = validate_plan(task, plan, build_simulators(topology))
        assert outcome.ok, outcome.problems
        assert outcome.goal_reached
        assert outcome.steps == len(plan)
        # every kept step completed exactly one service invocation
        assert outcome.service_calls \
            == sum(len(route.steps) for route in task.parts)
        assert outcome.moves \
            == outcome.steps - 2 * outcome.service_calls

    def test_roundtrips_through_dict(self, topology, task, plan):
        outcome = validate_plan(task, plan, build_simulators(topology))
        assert type(outcome).from_dict(outcome.to_dict()).to_dict() \
            == outcome.to_dict()


class TestViolationDetection:
    def test_truncated_plan_reports_unmet_goals(self, topology, task,
                                                plan):
        outcome = validate_plan(task, plan[:-1],
                                build_simulators(topology))
        assert not outcome.ok
        assert not outcome.goal_reached
        assert any("unmet goal" in problem
                   for problem in outcome.problems)

    def test_skipped_action_breaks_preconditions(self, topology, task,
                                                 plan):
        # drop the first start: its complete then fires unprepared
        first_start = next(i for i, action in enumerate(plan)
                           if action.kind == "start")
        tampered = plan[:first_start] + plan[first_start + 1:]
        outcome = validate_plan(task, tampered,
                                build_simulators(topology))
        assert not outcome.ok
        assert any("precondition" in problem
                   for problem in outcome.problems)

    def test_double_start_reports_busy_machine(self, topology, task,
                                               plan):
        first_start = next(action for action in plan
                           if action.kind == "start")
        tampered = (first_start,) + plan
        outcome = validate_plan(task, tampered,
                                build_simulators(topology))
        assert any("already executing" in problem
                   for problem in outcome.problems)

    def test_missing_simulator_reported(self, topology, task, plan):
        simulators = build_simulators(topology)
        victim = next(action.machine for action in plan
                      if action.kind == "complete")
        del simulators[victim]
        outcome = validate_plan(task, plan, simulators)
        assert any("no simulator" in problem
                   for problem in outcome.problems)
