"""The deterministic forward search: optimality, determinism, bounds."""

import pytest

from repro.icelab import icelab_sources
from repro.isa95 import extract_topology
from repro.planning import (FactoryDomain, PlanningError, build_task,
                            heuristic, solve)
from repro.sim import generate_workload
from repro.sysml import load_model


@pytest.fixture(scope="module")
def topology():
    return extract_topology(load_model(*icelab_sources()))


@pytest.fixture(scope="module")
def task(topology):
    domain = FactoryDomain(topology)
    return build_task(domain, generate_workload(topology, seed=7, jobs=4))


class TestSearch:
    def test_plan_reaches_the_goal(self, task):
        result = solve(task)
        state = task.init
        for action in result.actions:
            assert action.applicable(state), action.name
            state = action.apply(state)
        assert task.goal_reached(state)

    def test_greedy_matches_uniform_cost(self, topology):
        # the per-part DP heuristic admits monotone descent, so greedy
        # walks straight downhill: its plan cost equals the optimum.
        # uniform-cost is only tractable on small instances (its
        # frontier explodes combinatorially — why greedy is default)
        domain = FactoryDomain(topology)
        small = build_task(domain,
                           generate_workload(topology, seed=7, jobs=2))
        greedy = solve(small, strategy="greedy")
        uniform = solve(small, strategy="uniform")
        assert greedy.cost == uniform.cost
        # ...and h(init) is that optimum (admissible + achieved)
        assert heuristic(small, small.init) == greedy.cost

    def test_greedy_expands_one_state_per_action(self, task):
        result = solve(task, strategy="greedy")
        assert result.expanded == result.cost

    def test_repeat_runs_identical(self, task):
        plans = [tuple(a.name for a in solve(task, seed=5).actions)
                 for _ in range(2)]
        assert plans[0] == plans[1]

    def test_seed_changes_path_not_cost(self, task):
        base = solve(task, seed=0)
        other = solve(task, seed=99)
        assert base.cost == other.cost
        assert [a.name for a in base.actions] \
            != [a.name for a in other.actions]

    def test_unknown_strategy_rejected(self, task):
        with pytest.raises(PlanningError, match="unknown strategy"):
            solve(task, strategy="astar")

    def test_expansion_ceiling_fails_loudly(self, task):
        with pytest.raises(PlanningError, match="expanded more than"):
            solve(task, strategy="uniform", max_expansions=3)

    def test_empty_goal_is_trivially_solved(self, topology):
        domain = FactoryDomain(topology)
        workload = generate_workload(topology, seed=7, jobs=4)
        task = build_task(domain, workload)
        task.goal = frozenset()  # degenerate: already satisfied
        result = solve(task)
        assert result.actions == ()
        assert result.cost == 0


class TestHeuristic:
    def test_initial_value_counts_starts_and_moves(self, task):
        # every kept step needs a start+complete pair; h(init) >= 2*steps
        total_steps = sum(len(route.steps) for route in task.parts)
        assert heuristic(task, task.init) >= 2 * total_steps

    def test_zero_exactly_at_goal_states(self, task):
        result = solve(task)
        state = task.init
        for action in result.actions:
            state = action.apply(state)
        assert heuristic(task, state) == 0

    def test_descends_by_one_along_the_plan(self, task):
        # monotone descent is the property that keeps greedy linear
        result = solve(task, strategy="greedy")
        value = heuristic(task, task.init)
        state = task.init
        for action in result.actions:
            state = action.apply(state)
            next_value = heuristic(task, state)
            assert next_value == value - 1, action.name
            value = next_value
