"""Kernel tests: total event order, clock arithmetic, run bounds."""

import pytest

from repro.sim.kernel import (TICKS_PER_UNIT, Event, SchedulingInPastError,
                              SimulationError, Simulator, scale_ticks,
                              ticks, units)


class TestClock:
    def test_ticks_round_trip(self):
        assert ticks(1.0) == TICKS_PER_UNIT
        assert units(ticks(2.5)) == 2.5

    def test_ticks_rounds_to_tick_resolution(self):
        assert ticks(0.014) == 1
        assert ticks(0.016) == 2

    def test_scale_ticks_is_exact_ceiling(self):
        assert scale_ticks(100, 2, 1) == 200
        assert scale_ticks(3, 3, 2) == 5  # ceil(4.5)
        assert scale_ticks(0, 7, 3) == 0

    def test_scale_ticks_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            scale_ticks(10, 0, 1)
        with pytest.raises(ValueError):
            scale_ticks(-1, 1, 1)


class TestTotalOrder:
    def test_time_then_priority_then_ordinal(self):
        sim = Simulator(trace_events=True)
        order = []
        sim.schedule_at(5, lambda: order.append("late"), priority=0)
        sim.schedule_at(1, lambda: order.append("b"), priority=1)
        sim.schedule_at(1, lambda: order.append("a"), priority=0)
        sim.schedule_at(1, lambda: order.append("c"), priority=1)
        sim.run()
        assert order == ["a", "b", "c", "late"]

    def test_insertion_ordinal_breaks_exact_ties(self):
        sim = Simulator()
        order = []
        for index in range(10):
            sim.schedule_at(3, lambda i=index: order.append(i),
                            priority=2)
        sim.run()
        assert order == list(range(10))

    def test_event_comparison_uses_full_key(self):
        early = Event(1, 0, 0, lambda: None, "")
        late = Event(1, 0, 1, lambda: None, "")
        assert early < late
        assert early.key == (1, 0, 0)

    def test_actions_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append((sim.now, depth))
            if depth:
                sim.schedule(2, lambda: chain(depth - 1))

        sim.schedule_at(0, lambda: chain(3))
        executed = sim.run()
        assert executed == 4
        assert seen == [(0, 3), (2, 2), (4, 1), (6, 0)]


class TestGuards:
    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(5, lambda: sim.schedule_at(1, lambda: None))
        with pytest.raises(SchedulingInPastError):
            sim.run()

    def test_negative_delay_raises(self):
        with pytest.raises(SchedulingInPastError):
            Simulator().schedule(-1, lambda: None)

    def test_max_events_trips_on_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule_at(0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1, lambda: fired.append(1))
        sim.schedule_at(10, lambda: fired.append(10))
        sim.run(until=5)
        assert fired == [1]
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 10]

    def test_event_log_records_execution_order(self):
        sim = Simulator(trace_events=True)
        sim.schedule_at(2, lambda: None, label="two")
        sim.schedule_at(1, lambda: None, label="one")
        sim.run()
        assert [entry[3] for entry in sim.event_log] == ["one", "two"]
        assert sim.event_log == sorted(sim.event_log)
