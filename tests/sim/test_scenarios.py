"""Scenario recipes, reports and the briefing artifact."""

import json

import pytest

from repro.sim import (CANONICAL_SCENARIOS, SCENARIOS, Briefing,
                       ScenarioReport, build_scenario, horizon,
                       run_scenario, simulate_suite)


class TestRegistry:
    def test_canonical_trio_registered(self):
        assert CANONICAL_SCENARIOS == ("baseline", "rush-order",
                                       "slowdown")
        for name in CANONICAL_SCENARIOS:
            assert name in SCENARIOS

    def test_unknown_scenario_raises(self, topology):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("meteor-strike", topology, seed=0)


class TestBuilders:
    def test_baseline_has_no_perturbations(self, topology):
        spec = build_scenario("baseline", topology, seed=7)
        assert spec.slowdowns == () and spec.outages == ()
        assert spec.perturbations == ()

    def test_rush_order_adds_weighted_jobs(self, topology):
        base = build_scenario("baseline", topology, seed=7)
        rush = build_scenario("rush-order", topology, seed=7)
        extra = [job for job in rush.workload.jobs
                 if job.name.startswith("rush-")]
        assert extra and len(rush.workload) == len(base.workload) \
            + len(extra)
        assert all(job.weight == 2 for job in extra)
        assert all(record["type"] == "rush-order"
                   for record in rush.perturbations)

    def test_slowdown_targets_used_machines(self, topology):
        spec = build_scenario("slowdown", topology, seed=7)
        used = {step.machine for job in spec.workload.jobs
                for step in job.steps}
        assert spec.slowdowns
        for slowdown in spec.slowdowns:
            assert slowdown.machine in used
            assert 0 <= slowdown.start < slowdown.end <= \
                horizon(spec.workload)

    def test_outage_covers_one_workcell(self, topology):
        spec = build_scenario("outage", topology, seed=7)
        assert spec.outages
        workcells = {record["workcell"] for record in spec.perturbations}
        assert len(workcells) == 1
        cell = topology.workcell(workcells.pop())
        members = {machine.name for machine in cell.machines}
        assert {outage.machine for outage in spec.outages} <= members

    def test_blackout_is_permanent(self, topology):
        spec = build_scenario("blackout", topology, seed=7)
        assert all(outage.end is None for outage in spec.outages)

    def test_specs_deterministic_across_builds(self, topology):
        first = build_scenario("rush-order", topology, seed=9)
        second = build_scenario("rush-order", topology, seed=9)
        assert first.workload.to_dict() == second.workload.to_dict()
        assert first.perturbations == second.perturbations


class TestReports:
    def test_report_accounts_for_every_job(self, topology):
        spec = build_scenario("baseline", topology, seed=7)
        report = run_scenario(spec)
        assert len(report.jobs) == len(spec.workload)
        assert report.completed + len(report.stranded) == len(report.jobs)
        assert report.makespan > 0

    def test_blackout_reports_stranded_jobs(self, topology):
        report = run_scenario(build_scenario("blackout", topology,
                                             seed=7))
        assert report.stranded
        assert report.completed + len(report.stranded) == len(report.jobs)

    def test_digest_stable_and_sensitive(self, topology):
        spec = build_scenario("baseline", topology, seed=7)
        report = run_scenario(spec)
        assert report.digest == run_scenario(spec).digest
        other = run_scenario(build_scenario("baseline", topology, seed=8))
        assert report.digest != other.digest

    def test_render_lists_every_machine(self, topology):
        report = run_scenario(build_scenario("baseline", topology,
                                             seed=7))
        text = report.render()
        for machine in report.machines:
            assert machine.name in text


class TestBriefing:
    def test_briefing_compares_against_first_report(self, topology):
        briefing = simulate_suite(topology, seed=7)
        rows = briefing.comparison()
        assert "deltas" not in rows[0]
        assert all("deltas" in row for row in rows[1:])
        assert briefing.baseline.scenario == "baseline"

    def test_briefing_json_round_trips(self, topology):
        briefing = simulate_suite(topology, seed=7)
        document = json.loads(briefing.to_json())
        assert document["schema"] == "repro/sim-briefing/1"
        assert document["digest"] == briefing.digest
        assert [r["scenario"] for r in document["reports"]] == \
            list(CANONICAL_SCENARIOS)

    def test_briefing_lookup_by_name(self, topology):
        briefing = simulate_suite(topology, seed=7)
        assert briefing.report("slowdown").scenario == "slowdown"
        with pytest.raises(KeyError):
            briefing.report("meteor-strike")

    def test_empty_briefing_rejected(self):
        with pytest.raises(ValueError):
            Briefing(seed=0, policy="fifo", reports=[])

    def test_policies_change_outcomes_not_contract(self, topology):
        fifo = simulate_suite(topology, seed=7)
        edd = simulate_suite(topology, seed=7, policy="edd")
        assert fifo.digest != edd.digest
        assert [r.scenario for r in fifo.reports] == \
            [r.scenario for r in edd.reports]

    def test_report_is_a_scenario_report(self, topology):
        briefing = simulate_suite(topology, seed=7)
        assert all(isinstance(report, ScenarioReport)
                   for report in briefing.reports)
