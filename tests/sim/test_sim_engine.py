"""Engine semantics: dispatch policies, perturbations, stranding."""

import pytest

from repro.sim import (FactorySimulation, Job, JobStep, Outage,
                       SimulationError, Slowdown, Workload)


def route(name, *stops, release=0, due=1000):
    steps = tuple(JobStep(machine, "s", duration)
                  for machine, duration in stops)
    return Job(name=name, steps=steps, release=release, due=due)


def run(jobs, **kwargs):
    machines = kwargs.pop("machines", ())
    workload = Workload(jobs, machines=machines)
    return FactorySimulation(workload, **kwargs).run()


class TestDispatch:
    def test_single_machine_serializes(self):
        outcome = run([route("a", ("mill", 10)),
                       route("b", ("mill", 10))])
        spans = sorted((e.start, e.end) for e in outcome.schedule)
        assert spans == [(0, 10), (10, 20)]
        assert outcome.makespan == 20

    def test_fifo_serves_in_arrival_order(self):
        outcome = run([route("late", ("mill", 5), release=2),
                       route("early", ("mill", 5), release=1)])
        assert [e.job for e in outcome.schedule] == ["early", "late"]

    def test_edd_prefers_urgent_job(self):
        # both queued while the machine grinds the opener; EDD picks
        # the tighter due date, FIFO the earlier arrival
        jobs = [route("opener", ("mill", 10)),
                route("relaxed", ("mill", 5), release=1, due=900),
                route("urgent", ("mill", 5), release=2, due=30)]
        fifo = run(list(jobs))
        edd = run(list(jobs), policy="edd")
        assert [e.job for e in fifo.schedule] == \
            ["opener", "relaxed", "urgent"]
        assert [e.job for e in edd.schedule] == \
            ["opener", "urgent", "relaxed"]

    def test_routes_chain_across_machines(self):
        outcome = run([route("a", ("mill", 10), ("arm", 5))])
        mill, arm = outcome.schedule
        assert (mill.machine, arm.machine) == ("mill", "arm")
        assert arm.start == mill.end
        assert outcome.completions["a"] == 15

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown dispatch policy"):
            run([route("a", ("mill", 1))], policy="lifo")


class TestSlowdown:
    def test_services_in_window_stretch(self):
        outcome = run([route("a", ("mill", 10), release=5)],
                      slowdowns=(Slowdown("mill", 0, 100, num=2, den=1),))
        entry = outcome.schedule[0]
        assert entry.end - entry.start == 20

    def test_service_keeps_speed_it_started_with(self):
        # slowdown begins mid-service: the running service is unaffected
        outcome = run([route("a", ("mill", 10))],
                      slowdowns=(Slowdown("mill", 5, 50),))
        assert outcome.makespan == 10

    def test_window_end_restores_full_speed(self):
        outcome = run([route("a", ("mill", 10), release=50)],
                      slowdowns=(Slowdown("mill", 0, 30),))
        assert outcome.makespan == 60

    def test_overlapping_windows_rejected(self):
        with pytest.raises(SimulationError, match="overlapping"):
            run([route("a", ("mill", 1))],
                slowdowns=(Slowdown("mill", 0, 10),
                           Slowdown("mill", 5, 15)))

    def test_unknown_machine_rejected(self):
        with pytest.raises(SimulationError, match="unknown machine"):
            run([route("a", ("mill", 1))],
                slowdowns=(Slowdown("ghost", 0, 10),))


class TestOutage:
    def test_outage_defers_new_starts(self):
        outcome = run([route("a", ("mill", 10), release=5)],
                      outages=(Outage("mill", 0, 30),))
        entry = outcome.schedule[0]
        assert entry.start == 30
        assert outcome.completions["a"] == 40

    def test_in_flight_service_finishes_through_outage(self):
        outcome = run([route("a", ("mill", 10))],
                      outages=(Outage("mill", 5, 50),))
        assert outcome.completions["a"] == 10

    def test_permanent_outage_strands_jobs(self):
        outcome = run([route("done", ("mill", 5)),
                       route("stuck", ("mill", 5), release=20)],
                      outages=(Outage("mill", 10, None),))
        assert outcome.completions["done"] == 5
        assert outcome.completions["stuck"] is None
        assert outcome.stranded == ["stuck"]

    def test_queued_work_resumes_after_outage(self):
        outcome = run([route("a", ("mill", 5)),
                       route("b", ("mill", 5), release=1)],
                      outages=(Outage("mill", 5, 20),))
        assert [(e.start, e.end) for e in outcome.schedule] == \
            [(0, 5), (20, 25)]


class TestAccounting:
    def test_busy_ticks_and_steps(self):
        outcome = run([route("a", ("mill", 10), ("arm", 5)),
                       route("b", ("mill", 3))])
        assert outcome.busy_ticks == {"arm": 5, "mill": 13}
        assert outcome.steps_done == {"arm": 1, "mill": 2}

    def test_event_log_is_monotone(self):
        outcome = run([route("a", ("mill", 4), ("arm", 2)),
                       route("b", ("arm", 3), release=1)],
                      trace_events=True)
        keys = [entry[:3] for entry in outcome.event_log]
        assert keys == sorted(keys)
        times = [entry[0] for entry in outcome.event_log]
        assert times == sorted(times)
