"""Workload model: canonicalization, service times, seeded generation."""

import pytest

from repro.sim import (Job, JobStep, ServiceTimeModel, Workload,
                       WorkloadError, generate_workload,
                       validate_workload)


def job(name, machine="m1", release=0, due=100, duration=10):
    return Job(name=name, steps=(JobStep(machine, "s", duration),),
               release=release, due=due)


class TestWorkload:
    def test_jobs_canonically_sorted(self):
        w = Workload([job("b", release=5), job("a", release=5),
                      job("c", release=1)])
        assert [j.name for j in w.jobs] == ["c", "a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Workload([job("a"), job("a")])

    def test_machines_derived_from_steps(self):
        w = Workload([job("a", machine="mill"), job("b", machine="arm")])
        assert w.machines == ("arm", "mill")

    def test_unknown_machine_rejected(self):
        with pytest.raises(WorkloadError, match="unknown machines"):
            Workload([job("a", machine="ghost")], machines=("mill",))

    def test_empty_route_rejected(self):
        with pytest.raises(WorkloadError, match="no steps"):
            Job(name="x", steps=())

    def test_extended_merges_jobs(self):
        w = Workload([job("a")], machines=("m1",))
        extended = w.extended([job("b")])
        assert len(extended) == 2
        assert len(w) == 1  # original untouched


class TestServiceTimeModel:
    def test_durations_deterministic_and_positive(self, topology):
        times = ServiceTimeModel(topology)
        for machine in topology.machines:
            for service in machine.services:
                first = times.duration(machine.name, service.name)
                assert first >= 1
                assert times.duration(machine.name, service.name) == first

    def test_richer_services_take_longer(self, topology):
        times = ServiceTimeModel(topology)
        by_arity = {}
        for machine in topology.machines:
            for service in machine.services:
                arity = 2 * len(service.inputs) + len(service.outputs)
                by_arity.setdefault(machine.name, {})[service.name] = (
                    arity, times.duration(machine.name, service.name))
        for services in by_arity.values():
            ranked = sorted(services.values())
            for (arity_a, dur_a), (arity_b, dur_b) in zip(ranked,
                                                          ranked[1:]):
                if arity_a < arity_b:
                    assert dur_a <= dur_b

    def test_overrides_pin_durations(self, topology):
        machine = topology.machines[0]
        key = f"{machine.name}.{machine.services[0].name}" \
            if machine.services else f"{machine.name}.process"
        times = ServiceTimeModel(topology, overrides={key: 7.5})
        name = key.split(".", 1)[1]
        assert times.duration(machine.name, name) == 750

    def test_unknown_machine_raises(self, topology):
        with pytest.raises(WorkloadError, match="no machine"):
            ServiceTimeModel(topology).duration("ghost", "s")


class TestGenerateWorkload:
    def test_generated_workload_is_valid(self, topology):
        w = generate_workload(topology, seed=7)
        assert validate_workload(w, topology) == []
        assert len(w) == max(4, 2 * len(topology.workcells))
        for j in w.jobs:
            assert 2 <= len(j.steps) <= 4
            assert j.due > j.release

    def test_same_seed_same_book(self, topology):
        first = generate_workload(topology, seed=11)
        second = generate_workload(topology, seed=11)
        assert first.to_dict() == second.to_dict()

    def test_different_seeds_differ(self, topology):
        assert generate_workload(topology, seed=1).to_dict() != \
            generate_workload(topology, seed=2).to_dict()

    def test_routes_follow_topology_order(self, topology):
        order = {m.name: i for i, m in enumerate(topology.machines)}
        w = generate_workload(topology, seed=3)
        for j in w.jobs:
            positions = [order[s.machine] for s in j.steps]
            assert positions == sorted(positions)
            assert len(set(positions)) == len(positions)

    def test_streams_decorrelate_at_same_seed(self, topology):
        base = generate_workload(topology, seed=7, jobs=4)
        rush = generate_workload(topology, seed=7, jobs=4, stream="rush",
                                 name_prefix="rush")
        base_routes = [[s.to_dict() for s in j.steps] for j in base.jobs]
        rush_routes = [[s.to_dict() for s in j.steps] for j in rush.jobs]
        assert base_routes != rush_routes

    def test_empty_topology_rejected(self):
        from repro.isa95.levels import FactoryTopology
        with pytest.raises(WorkloadError, match="no machines"):
            generate_workload(FactoryTopology(), seed=0)

    def test_validate_reports_ghost_references(self, topology):
        bad = Workload(
            [Job(name="x", steps=(JobStep("ghost", "s", 5),), due=10)])
        problems = validate_workload(bad, topology)
        assert problems and "unknown machine" in problems[0]
