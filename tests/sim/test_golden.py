"""Golden briefings: the canonical ICE-lab trio, byte for byte.

These files are the determinism contract made concrete: the committed
JSON must match a fresh `simulate_suite` run exactly — across machines,
interpreter restarts and worker pools. A legitimate engine change that
alters outcomes must regenerate them (``python -m repro simulate
--seed 7 --json``) and the diff reviewed like any other artifact.
"""

from pathlib import Path

import pytest

from repro.sim import simulate_suite

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("policy", ["fifo", "edd"])
def test_icelab_trio_matches_committed_briefing(topology, policy):
    suffix = "" if policy == "fifo" else f"_{policy}"
    golden = (GOLDEN_DIR
              / f"briefing_icelab_seed7{suffix}.json").read_text()
    briefing = simulate_suite(topology, seed=7, policy=policy)
    assert briefing.to_json() == golden


def test_golden_digest_stable_across_pools(topology):
    golden = simulate_suite(topology, seed=7, mode="serial")
    pooled = simulate_suite(topology, seed=7, jobs=3, mode="thread")
    assert pooled.to_json() == golden.to_json()
