"""Property suite: the kernel/scheduler invariants the design note
promises.

* no machine ever processes two jobs at once;
* every released job either completes or is reported stranded;
* executed event keys are monotone (timestamps never go backwards);
* for a fixed seed/workload, report metrics are independent of the
  input order of the job list.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.sim import (FactorySimulation, Job, JobStep, Outage,
                       ScenarioReport, Slowdown, Workload)  # noqa: E402

MACHINES = ("mill", "arm", "plc", "press")

steps_strategy = st.lists(
    st.tuples(st.sampled_from(MACHINES), st.integers(1, 30)),
    min_size=1, max_size=4).map(
        lambda stops: tuple(JobStep(machine, "s", duration)
                            for machine, duration in stops))


@st.composite
def workloads(draw):
    count = draw(st.integers(1, 6))
    jobs = []
    for index in range(count):
        steps = draw(steps_strategy)
        release = draw(st.integers(0, 40))
        work = sum(step.duration for step in steps)
        due = release + work + draw(st.integers(0, 30))
        jobs.append(Job(name=f"j{index}", steps=steps, release=release,
                        due=due))
    return Workload(jobs, machines=MACHINES)


@st.composite
def perturbations(draw):
    """Disjoint windows per machine: a slowdown list + an outage list
    (at most one of each per machine keeps windows trivially valid)."""
    slowdowns = []
    outages = []
    for machine in draw(st.sets(st.sampled_from(MACHINES), max_size=2)):
        start = draw(st.integers(0, 50))
        length = draw(st.integers(1, 60))
        if draw(st.booleans()):
            slowdowns.append(Slowdown(machine, start, start + length,
                                      num=draw(st.integers(2, 4)), den=1))
        else:
            end = None if draw(st.booleans()) else start + length
            outages.append(Outage(machine, start, end))
    return tuple(slowdowns), tuple(outages)


def simulate(workload, slowdowns=(), outages=(), policy="fifo",
             trace=False):
    return FactorySimulation(workload, policy=policy,
                             slowdowns=slowdowns, outages=outages,
                             trace_events=trace).run()


class TestInvariants:
    @given(workloads(), perturbations(),
           st.sampled_from(("fifo", "edd")))
    def test_no_machine_overlaps(self, workload, perturbation, policy):
        slowdowns, outages = perturbation
        outcome = simulate(workload, slowdowns, outages, policy)
        by_machine = {}
        for entry in outcome.schedule:
            by_machine.setdefault(entry.machine, []).append(
                (entry.start, entry.end))
        for spans in by_machine.values():
            spans.sort()
            for (_, first_end), (second_start, _) in zip(spans,
                                                         spans[1:]):
                assert second_start >= first_end

    @given(workloads(), perturbations(),
           st.sampled_from(("fifo", "edd")))
    def test_every_job_completes_or_is_stranded(self, workload,
                                                perturbation, policy):
        slowdowns, outages = perturbation
        outcome = simulate(workload, slowdowns, outages, policy)
        assert set(outcome.completions) == \
            {job.name for job in workload.jobs}
        permanent = any(outage.end is None for outage in outages)
        for name, completed in outcome.completions.items():
            if completed is None:
                assert name in outcome.stranded
                assert permanent
            else:
                job = next(j for j in workload.jobs if j.name == name)
                assert completed >= job.release + job.work

    @given(workloads(), perturbations())
    def test_event_keys_are_monotone(self, workload, perturbation):
        slowdowns, outages = perturbation
        outcome = simulate(workload, slowdowns, outages, trace=True)
        keys = [entry[:3] for entry in outcome.event_log]
        assert keys == sorted(keys)
        assert all(earlier[0] <= later[0]
                   for earlier, later in zip(keys, keys[1:]))

    @given(workloads(), st.randoms(use_true_random=False),
           st.sampled_from(("fifo", "edd")))
    def test_report_independent_of_input_order(self, workload, rng,
                                               policy):
        shuffled = list(workload.jobs)
        rng.shuffle(shuffled)
        reordered = Workload(shuffled, machines=workload.machines)

        def report(w):
            return ScenarioReport.from_outcome(
                simulate(w, policy=policy), scenario="t",
                description="", seed=0)

        assert report(workload).digest == report(reordered).digest

    @given(workloads())
    def test_work_conservation(self, workload):
        """Executed busy ticks equal the total work of completed steps."""
        outcome = simulate(workload)
        scheduled = sum(entry.end - entry.start
                        for entry in outcome.schedule)
        assert sum(outcome.busy_ticks.values()) == scheduled
        assert sum(outcome.steps_done.values()) == len(outcome.schedule)
