"""Baseline (SysML v1 methodology) and comparison tests."""

import pytest

from repro.baseline import (FAULT_SCENARIOS, build_v1_model,
                            compare_methodologies,
                            generate_v1_configuration, run_fault_scenario)
from repro.machines.specs import EMCO_SPEC, ICE_LAB_SPECS, SPEA_SPEC


class TestV1Model:
    def test_blocks_created_per_machine(self):
        model = build_v1_model([EMCO_SPEC, SPEA_SPEC])
        assert set(model.blocks) == {"emco", "emco_driver", "spea",
                                     "spea_driver", "workCell01",
                                     "workCell02"}

    def test_duplication_no_reuse(self):
        # two identical Kairos AGVs: v1 restates everything twice
        kairos = [s for s in ICE_LAB_SPECS if s.name.startswith("kairos")]
        model = build_v1_model(kairos)
        block1 = model.blocks["kairos1"]
        block2 = model.blocks["kairos2"]
        assert block1.element_count == block2.element_count
        assert model.element_count >= 2 * block1.element_count

    def test_element_count_scales_with_points(self):
        small = build_v1_model([SPEA_SPEC])
        large = build_v1_model([EMCO_SPEC])
        assert large.element_count > small.element_count

    def test_silent_overwrite_of_duplicates(self):
        from repro.baseline import V1Block
        model = build_v1_model([])
        model.add(V1Block(name="x", stereotype="machine"))
        model.add(V1Block(name="x", stereotype="driver"))  # no error
        assert model.blocks["x"].stereotype == "driver"


class TestV1Generator:
    def test_generates_configs_for_machines(self):
        model = build_v1_model([EMCO_SPEC, SPEA_SPEC])
        result = generate_v1_configuration(model)
        assert set(result.machine_configs) == {"emco", "spea"}
        emco = result.machine_configs["emco"]
        assert len(emco["variables"]) == 34
        assert len(emco["methods"]) == 19
        assert emco["driver"]["parameters"]["ip"] == "10.197.12.11"

    def test_server_configs_per_workcell(self):
        model = build_v1_model(list(ICE_LAB_SPECS))
        result = generate_v1_configuration(model)
        assert result.opcua_server_count == 6

    def test_generation_time_recorded(self):
        model = build_v1_model([SPEA_SPEC])
        result = generate_v1_configuration(model)
        assert result.generation_seconds >= 0


class TestFaultScenarios:
    @pytest.mark.parametrize("scenario", FAULT_SCENARIOS,
                             ids=[s.name for s in FAULT_SCENARIOS])
    def test_v2_catches_v1_misses(self, scenario):
        outcome = run_fault_scenario(scenario)
        assert outcome.caught_by_v2, \
            f"v2 missed {scenario.name}: {outcome.v2_diagnostic}"
        assert not outcome.caught_by_v1

    def test_scenarios_are_distinct(self):
        names = [s.name for s in FAULT_SCENARIOS]
        assert len(names) == len(set(names)) >= 7


class TestComparison:
    @pytest.fixture(scope="class")
    def report(self):
        return compare_methodologies(list(ICE_LAB_SPECS))

    def test_catch_rates(self, report):
        assert report.v2_catch_rate == 1.0
        assert report.v1_catch_rate == 0.0

    def test_reuse_detected(self, report):
        assert report.v2_reused_definitions == 1  # the second RB-Kairos

    def test_element_counts_positive(self, report):
        assert report.v1_elements > 0
        assert report.v2_elements > 0

    def test_render(self, report):
        text = report.render()
        assert "catch rate" in text
        assert "abstract-instantiation" in text
