import os
import sys
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).parent
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))

from fixtures import EMCO_WORKCELL_SOURCE  # noqa: E402

from repro.sysml import load_model  # noqa: E402

try:  # property suites are skipped cleanly where hypothesis is absent
    from hypothesis import HealthCheck, settings as _hyp_settings
except ImportError:  # pragma: no cover
    _hyp_settings = None

if _hyp_settings is not None:
    # "dev" keeps the loop fast at the keyboard; "ci" digs deeper and
    # never gives up on a slow example. Select with
    # HYPOTHESIS_PROFILE=ci (the CI workflow does) — inline
    # @settings(max_examples=...) on individual tests still win.
    _hyp_settings.register_profile(
        "dev", max_examples=25, deadline=None)
    _hyp_settings.register_profile(
        "ci", max_examples=200, deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow])
    _hyp_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE",
                       "ci" if os.environ.get("CI") else "dev"))

CRASH_CORPUS_DIR = TESTS_DIR / "crash_corpus"


def crash_corpus_files():
    """The checked-in minimal reproducers (shrinker output)."""
    return sorted(CRASH_CORPUS_DIR.glob("*.sysml"))


@pytest.fixture(scope="session")
def emco_model():
    """The paper's running example (workcell 02), parsed and resolved."""
    return load_model(EMCO_WORKCELL_SOURCE)


@pytest.fixture(scope="session")
def topology():
    """The extracted ICE-lab factory (6 workcells, 10 machines)."""
    from repro.icelab.factory import icelab_topology
    return icelab_topology()
