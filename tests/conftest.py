import sys
from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).parent
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))

from fixtures import EMCO_WORKCELL_SOURCE  # noqa: E402

from repro.sysml import load_model  # noqa: E402


@pytest.fixture(scope="session")
def emco_model():
    """The paper's running example (workcell 02), parsed and resolved."""
    return load_model(EMCO_WORKCELL_SOURCE)
