"""Address space, node id, and node behavior tests."""

import pytest

from repro.opcua import (AddressSpace, AddressSpaceError, Argument,
                         MethodNode, NodeId, NodeIdError, ObjectNode,
                         QualifiedName, VariableNode)


class TestNodeId:
    def test_string_rendering_numeric(self):
        assert str(NodeId(0, 85)) == "ns=0;i=85"

    def test_string_rendering_string_id(self):
        assert str(NodeId(2, "emco/actualX")) == "ns=2;s=emco/actualX"

    def test_parse_numeric(self):
        assert NodeId.parse("ns=0;i=85") == NodeId(0, 85)

    def test_parse_string(self):
        assert NodeId.parse("ns=2;s=emco.x") == NodeId(2, "emco.x")

    def test_parse_malformed(self):
        for bad in ("", "85", "ns=x;i=1", "ns=1;q=2", "ns=1;s="):
            with pytest.raises(NodeIdError):
                NodeId.parse(bad)

    def test_negative_namespace_rejected(self):
        with pytest.raises(NodeIdError):
            NodeId(-1, 1)

    def test_hashable_and_ordered(self):
        ids = {NodeId(0, 1), NodeId(0, 1), NodeId(0, 2)}
        assert len(ids) == 2
        assert NodeId(0, 1) < NodeId(0, 2)


class TestQualifiedName:
    def test_rendering(self):
        assert str(QualifiedName(2, "Machine")) == "2:Machine"

    def test_parse_with_namespace(self):
        assert QualifiedName.parse("2:Machine") == QualifiedName(2, "Machine")

    def test_parse_plain(self):
        assert QualifiedName.parse("Machine") == QualifiedName(0, "Machine")

    def test_empty_name_rejected(self):
        with pytest.raises(NodeIdError):
            QualifiedName(0, "")


@pytest.fixture
def space():
    return AddressSpace()


class TestAddressSpace:
    def test_objects_folder_preinstalled(self, space):
        assert space.objects.browse_name.name == "Objects"
        assert len(space) == 1

    def test_add_and_get(self, space):
        node = ObjectNode(NodeId(1, "m"), QualifiedName(1, "m"))
        space.add(space.objects, node)
        assert space.get(NodeId(1, "m")) is node

    def test_duplicate_node_id_rejected(self, space):
        space.add(space.objects, ObjectNode(NodeId(1, "m"),
                                            QualifiedName(1, "m")))
        with pytest.raises(AddressSpaceError):
            space.add(space.objects, ObjectNode(NodeId(1, "m"),
                                                QualifiedName(1, "m2")))

    def test_get_unknown_raises(self, space):
        with pytest.raises(AddressSpaceError):
            space.get(NodeId(9, "nope"))

    def test_find_returns_none(self, space):
        assert space.find(NodeId(9, "nope")) is None

    def test_browse_path(self, space):
        machine = space.add(space.objects,
                            ObjectNode(NodeId(1, "emco"),
                                       QualifiedName(1, "emco")))
        data = space.add(machine, ObjectNode(NodeId(1, "emco/data"),
                                             QualifiedName(1, "data")))
        space.add(data, VariableNode(NodeId(1, "emco/data/x"),
                                     QualifiedName(1, "x")))
        assert space.browse_path("emco/data/x").node_id == \
            NodeId(1, "emco/data/x")

    def test_browse_path_broken(self, space):
        with pytest.raises(AddressSpaceError, match="broken at"):
            space.browse_path("missing/child")

    def test_variables_and_methods_listing(self, space):
        machine = space.add(space.objects,
                            ObjectNode(NodeId(1, "m"), QualifiedName(1, "m")))
        space.add(machine, VariableNode(NodeId(1, "v"), QualifiedName(1, "v")))
        space.add(machine, MethodNode(NodeId(1, "f"), QualifiedName(1, "f")))
        assert len(space.variables()) == 1
        assert len(space.methods()) == 1


class TestVariableNode:
    def test_initial_value(self):
        node = VariableNode(NodeId(1, "v"), QualifiedName(1, "v"),
                            data_type="Double", initial_value=1.5)
        assert node.value == 1.5
        assert node.read().status == "Good"

    def test_write_updates_value_and_timestamps(self):
        node = VariableNode(NodeId(1, "v"), QualifiedName(1, "v"))
        node.write(42, timestamp=10.0)
        assert node.value == 42
        assert node.read().source_timestamp == 10.0

    def test_readonly_variable(self):
        node = VariableNode(NodeId(1, "v"), QualifiedName(1, "v"),
                            writable=False)
        with pytest.raises(AddressSpaceError):
            node.write(1)

    def test_change_listener(self):
        node = VariableNode(NodeId(1, "v"), QualifiedName(1, "v"))
        seen = []
        node.on_change(lambda n, dv: seen.append(dv.value))
        node.write(1)
        node.write(2)
        assert seen == [1, 2]

    def test_remove_listener(self):
        node = VariableNode(NodeId(1, "v"), QualifiedName(1, "v"))
        seen = []
        listener = lambda n, dv: seen.append(dv.value)  # noqa: E731
        node.on_change(listener)
        node.remove_listener(listener)
        node.write(1)
        assert seen == []


class TestMethodNode:
    def make(self, handler=None, n_in=1, n_out=1):
        return MethodNode(
            NodeId(1, "m"), QualifiedName(1, "m"), handler=handler,
            input_arguments=[Argument(f"in{i}") for i in range(n_in)],
            output_arguments=[Argument(f"out{i}") for i in range(n_out)])

    def test_call_dispatches_to_handler(self):
        method = self.make(handler=lambda x: (x * 2,))
        assert method.call(21) == (42,)
        assert method.call_count == 1

    def test_scalar_return_normalized_to_tuple(self):
        method = self.make(handler=lambda x: x + 1)
        assert method.call(1) == (2,)

    def test_no_handler_raises(self):
        with pytest.raises(AddressSpaceError, match="no bound handler"):
            self.make().call(1)

    def test_wrong_arity_rejected(self):
        method = self.make(handler=lambda x: (x,))
        with pytest.raises(AddressSpaceError, match="expects 1 argument"):
            method.call(1, 2)

    def test_wrong_output_count_rejected(self):
        method = self.make(handler=lambda x: (1, 2), n_out=1)
        with pytest.raises(AddressSpaceError, match="must return 1"):
            method.call(1)

    def test_void_method(self):
        method = MethodNode(NodeId(1, "m"), QualifiedName(1, "m"),
                            handler=lambda: None)
        assert method.call() == ()
