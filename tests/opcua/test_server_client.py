"""Server/client/session/subscription integration tests."""

import pytest

from repro.opcua import (Argument, NetworkError, OpcUaClient, OpcUaServer,
                         SessionError, UaNetwork)


@pytest.fixture
def network():
    return UaNetwork()


@pytest.fixture
def server(network):
    server = OpcUaServer("opc.tcp://wc02:4840", network=network,
                         application_name="wc02-server")
    machine = server.add_object(server.space.objects, "emco")
    data = server.add_object(machine, "data")
    server.add_variable(data, "actualX", data_type="Double",
                        initial_value=0.0)
    server.add_variable(data, "mode", data_type="String",
                        initial_value="idle")
    services = server.add_object(machine, "services")
    server.add_method(services, "is_ready",
                      handler=lambda: (True,),
                      output_arguments=[Argument("ready", "Boolean")])
    server.add_method(services, "run_program",
                      handler=lambda name: (f"started:{name}",),
                      input_arguments=[Argument("program", "String")],
                      output_arguments=[Argument("status", "String")])
    server.start()
    yield server
    server.stop()


class TestServerLifecycle:
    def test_start_registers_endpoint(self, server, network):
        assert network.lookup("opc.tcp://wc02:4840") is server

    def test_stop_unregisters(self, network):
        server = OpcUaServer("opc.tcp://x:1", network=network)
        server.start()
        server.stop()
        with pytest.raises(NetworkError):
            network.lookup("opc.tcp://x:1")

    def test_duplicate_endpoint_rejected(self, server, network):
        clone = OpcUaServer("opc.tcp://wc02:4840", network=network)
        with pytest.raises(NetworkError):
            clone.start()

    def test_session_requires_running_server(self, network):
        server = OpcUaServer("opc.tcp://x:1", network=network)
        with pytest.raises(SessionError):
            server.create_session()

    def test_namespace_registration(self, server):
        index = server.register_namespace("urn:icelab:emco")
        assert server.namespace_uris[index] == "urn:icelab:emco"
        assert server.register_namespace("urn:icelab:emco") == index

    def test_stats(self, server):
        stats = server.stats()
        assert stats["variables"] == 2
        assert stats["methods"] == 2


class TestClientBasics:
    def test_connect_read(self, server, network):
        client = OpcUaClient("test", network=network)
        client.connect("opc.tcp://wc02:4840")
        assert client.read("emco/data/actualX") == 0.0
        client.disconnect()

    def test_connect_unknown_endpoint(self, network):
        client = OpcUaClient(network=network)
        with pytest.raises(NetworkError):
            client.connect("opc.tcp://nowhere:4840")

    def test_double_connect_rejected(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        with pytest.raises(NetworkError):
            client.connect("opc.tcp://wc02:4840")

    def test_write_then_read(self, server, network):
        with_client = OpcUaClient(network=network)
        with_client.connect("opc.tcp://wc02:4840")
        with_client.write("emco/data/actualX", 12.5)
        assert with_client.read("emco/data/actualX") == 12.5

    def test_call_method(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        assert client.call("emco/services/is_ready") == (True,)
        assert client.call("emco/services/run_program", "part42.nc") == \
            ("started:part42.nc",)

    def test_browse(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        roots = client.browse()
        assert [n.browse_name.name for n in roots] == ["emco"]

    def test_browse_variables(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        names = {v.browse_name.name for v in client.browse_variables()}
        assert names == {"actualX", "mode"}

    def test_context_manager_disconnects(self, server, network):
        with OpcUaClient(network=network) as client:
            client.connect("opc.tcp://wc02:4840")
            assert client.connected
        assert not client.connected

    def test_operations_require_connection(self, network):
        client = OpcUaClient(network=network)
        with pytest.raises(NetworkError):
            client.read("x")

    def test_session_invalidated_by_server_stop(self, network):
        server = OpcUaServer("opc.tcp://y:1", network=network)
        server.add_variable(server.space.objects, "v", data_type="Double",
                            initial_value=0.0)
        server.start()
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://y:1")
        server.stop()
        with pytest.raises(SessionError):
            client.read("v")


class TestSubscriptions:
    def test_data_change_callback(self, server, network):
        writer = OpcUaClient("writer", network=network)
        writer.connect("opc.tcp://wc02:4840")
        watcher = OpcUaClient("watcher", network=network)
        watcher.connect("opc.tcp://wc02:4840")
        seen = []
        watcher.subscribe(["emco/data/actualX"],
                          callback=lambda n: seen.append(n.value))
        writer.write("emco/data/actualX", 1.0)
        writer.write("emco/data/actualX", 2.0)
        assert seen == [1.0, 2.0]

    def test_queue_mode(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        subscription = client.subscribe(["emco/data/mode"])
        client.write("emco/data/mode", "auto")
        notes = subscription.take_notifications()
        assert len(notes) == 1
        assert notes[0].value == "auto"
        assert subscription.take_notifications() == []

    def test_multiple_monitored_items(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        subscription = client.subscribe(
            ["emco/data/actualX", "emco/data/mode"])
        client.write("emco/data/actualX", 5.0)
        client.write("emco/data/mode", "run")
        notes = subscription.take_notifications()
        assert {str(n.node_id) for n in notes} == {
            "ns=1;s=emco/data/actualX", "ns=1;s=emco/data/mode"}

    def test_subscription_closed_with_session(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        seen = []
        client.subscribe(["emco/data/actualX"],
                         callback=lambda n: seen.append(n.value))
        client.disconnect()
        writer = OpcUaClient(network=network)
        writer.connect("opc.tcp://wc02:4840")
        writer.write("emco/data/actualX", 9.0)
        assert seen == []

    def test_unmonitor_item(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        subscription = client.subscribe(["emco/data/actualX"])
        item_id = next(iter(subscription.items))
        subscription.unmonitor(item_id)
        client.write("emco/data/actualX", 3.0)
        assert subscription.take_notifications() == []

    def test_queue_overflow_drops(self, server, network):
        client = OpcUaClient(network=network)
        client.connect("opc.tcp://wc02:4840")
        subscription = client.session.create_subscription()
        subscription.queue = type(subscription.queue)(maxlen=2)
        client.session.monitor(subscription,
                               client.node_id_of("emco/data/actualX"))
        for i in range(5):
            client.write("emco/data/actualX", float(i))
        assert subscription.dropped == 3
        assert [n.value for n in subscription.take_notifications()] == \
            [3.0, 4.0]
