"""Template engine tests."""

import pytest

from repro.templates import Template, TemplateError, k8s_name, render


class TestSubstitution:
    def test_simple(self):
        assert render("hello {{ name }}", {"name": "world"}) == "hello world"

    def test_dotted_path(self):
        assert render("{{ machine.driver.ip }}",
                      {"machine": {"driver": {"ip": "10.0.0.1"}}}) == \
            "10.0.0.1"

    def test_list_index(self):
        assert render("{{ items.1 }}", {"items": ["a", "b"]}) == "b"

    def test_attribute_access(self):
        class Thing:
            name = "emco"
        assert render("{{ thing.name }}", {"thing": Thing()}) == "emco"

    def test_unknown_name_raises(self):
        with pytest.raises(TemplateError, match="unknown name"):
            render("{{ nope }}", {})

    def test_none_renders_empty(self):
        assert render("[{{ x }}]", {"x": None}) == "[]"

    def test_integer_rendering(self):
        assert render("port: {{ port }}", {"port": 4840}) == "port: 4840"


class TestFilters:
    def test_upper_lower(self):
        assert render("{{ n | upper }}", {"n": "abc"}) == "ABC"
        assert render("{{ n | lower }}", {"n": "ABC"}) == "abc"

    def test_k8s_name(self):
        assert k8s_name("EMCO Milling #2") == "emco-milling-2"
        assert render("{{ n | k8s_name }}", {"n": "UR5e_Cobot"}) == \
            "ur5e-cobot"

    def test_k8s_name_length_cap(self):
        assert len(k8s_name("x" * 100)) == 63

    def test_k8s_name_empty_rejected(self):
        with pytest.raises(TemplateError):
            k8s_name("###")

    def test_json_filter(self):
        assert render("{{ cfg | json }}", {"cfg": {"b": 1, "a": 2}}) == \
            '{"a":2,"b":1}'

    def test_yaml_str_filter_quotes_when_needed(self):
        assert render("{{ v | yaml_str }}", {"v": "true"}) == '"true"'
        assert render("{{ v | yaml_str }}", {"v": "plain"}) == "plain"

    def test_filter_chain(self):
        assert render("{{ n | k8s_name | upper }}", {"n": "a b"}) == "A-B"

    def test_indent_filter(self):
        assert render("{{ text | indent:2 }}", {"text": "a\nb"}) == "a\n  b"

    def test_length_filter(self):
        assert render("{{ items | length }}", {"items": [1, 2, 3]}) == "3"

    def test_unknown_filter(self):
        with pytest.raises(TemplateError, match="unknown filter"):
            render("{{ x | banana }}", {"x": 1})


class TestForLoops:
    def test_iteration(self):
        assert render("{% for x in items %}{{ x }},{% endfor %}",
                      {"items": [1, 2, 3]}) == "1,2,3,"

    def test_loop_variables(self):
        out = render(
            "{% for x in items %}{{ loop.index }}:{{ x }} {% endfor %}",
            {"items": ["a", "b"]})
        assert out == "0:a 1:b "

    def test_loop_first_last(self):
        out = render(
            "{% for x in items %}"
            "{% if loop.first %}[{% endif %}{{ x }}"
            "{% if loop.last %}]{% endif %}{% endfor %}",
            {"items": [1, 2, 3]})
        assert out == "[123]"

    def test_nested_loops(self):
        out = render(
            "{% for row in grid %}{% for cell in row %}{{ cell }}"
            "{% endfor %};{% endfor %}",
            {"grid": [[1, 2], [3]]})
        assert out == "12;3;"

    def test_iterating_non_sequence_rejected(self):
        with pytest.raises(TemplateError, match="cannot iterate"):
            render("{% for x in n %}{% endfor %}", {"n": 5})

    def test_missing_endfor(self):
        with pytest.raises(TemplateError):
            Template("{% for x in items %}{{ x }}")


class TestConditionals:
    def test_if_true(self):
        assert render("{% if flag %}yes{% endif %}", {"flag": True}) == "yes"

    def test_if_false(self):
        assert render("{% if flag %}yes{% endif %}", {"flag": False}) == ""

    def test_if_else(self):
        template = "{% if flag %}a{% else %}b{% endif %}"
        assert render(template, {"flag": 1}) == "a"
        assert render(template, {"flag": 0}) == "b"

    def test_if_not(self):
        assert render("{% if not flag %}off{% endif %}", {"flag": False}) == \
            "off"

    def test_missing_name_is_falsy(self):
        assert render("{% if ghost %}yes{% else %}no{% endif %}", {}) == "no"

    def test_truthiness_of_collections(self):
        template = "{% if items %}has{% else %}none{% endif %}"
        assert render(template, {"items": [1]}) == "has"
        assert render(template, {"items": []}) == "none"

    def test_mismatched_closing_tag(self):
        with pytest.raises(TemplateError):
            Template("{% for x in items %}{% endif %}")


class TestK8sTemplates:
    def test_builtin_templates_render_valid_yaml(self):
        from repro.templates import get_template
        from repro.yamlgen import parse_documents
        context = {
            "namespace": "icelab",
            "broker_url": "mqtt://broker:1883",
            "database_url": "ts://factorydb:8086",
            "component": {
                "name": "wc02 EMCO server",
                "kind": "opcua-server",
                "image": "icelab/opcua-server:1.0",
                "replicas": 1,
                "port": 4840,
                "cpu_request": "100m",
                "memory_request": "128Mi",
                "config_json": {"machine": "emco", "variables": 34},
            },
        }
        for kind in ("opcua-server", "opcua-client", "historian"):
            documents = parse_documents(get_template(kind).render(context))
            assert documents, kind
            kinds = [d["kind"] for d in documents]
            assert "ConfigMap" in kinds
            assert "Deployment" in kinds
            if kind == "opcua-server":
                assert "Service" in kinds
            for document in documents:
                assert document["metadata"]["namespace"] == "icelab"

    def test_unknown_template_kind(self):
        from repro.templates import get_template
        with pytest.raises(KeyError):
            get_template("banana")
