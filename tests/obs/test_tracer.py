"""Tracing spans: nesting, timing, attributes, counters, no-op mode."""

import time

import pytest

from repro.obs import (NULL_SPAN, NULL_TRACER, Tracer, activation,
                       current_tracer, span)


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.activate():
            with span("outer"):
                with span("inner-a"):
                    pass
                with span("inner-b"):
                    with span("leaf"):
                        pass
        trace = tracer.trace()
        assert [r.name for r in trace.roots] == ["outer"]
        outer = trace.roots[0]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.activate():
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in tracer.trace().roots] == ["first", "second"]

    def test_span_records_wall_time(self):
        tracer = Tracer()
        with tracer.activate():
            with span("sleepy"):
                time.sleep(0.02)
        record = tracer.trace().find("sleepy")
        assert record.duration_s >= 0.015

    def test_child_time_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.activate():
            with span("parent"):
                with span("child"):
                    time.sleep(0.01)
                time.sleep(0.01)
        parent = tracer.trace().find("parent")
        child = parent.children[0]
        assert child.duration_s <= parent.duration_s
        assert parent.self_seconds >= 0.0

    def test_attributes_and_counters(self):
        tracer = Tracer()
        with tracer.activate():
            with span("work", machines=10) as s:
                s.set("namespace", "icelab")
                s.incr("items")
                s.incr("items", 2)
        record = tracer.trace().find("work")
        assert record.attributes == {"machines": 10, "namespace": "icelab"}
        assert record.counters == {"items": 3}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.activate():
                with span("fails"):
                    raise ValueError("boom")
        record = tracer.trace().find("fails")
        assert record.attributes["error"] == "ValueError"
        assert record.duration_s >= 0.0


class TestNoOpMode:
    def test_ambient_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_span_outside_activation_is_the_null_singleton(self):
        # zero-cost when disabled: no allocation, shared no-op span
        assert span("anything", big=1) is NULL_SPAN
        assert span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with span("nothing") as s:
            assert not s.enabled
            s.set("key", "value")
            s.incr("counter", 5)

    def test_activation_restores_previous_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            inner = Tracer()
            with inner.activate():
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_activation_helper_prefers_explicit_tracer(self):
        explicit = Tracer()
        with activation(explicit) as tracer:
            assert tracer is explicit
            assert current_tracer() is explicit

    def test_activation_helper_falls_back_to_ambient(self):
        ambient = Tracer()
        with ambient.activate():
            with activation(None) as tracer:
                assert tracer is ambient
        with activation(None) as tracer:
            assert tracer is NULL_TRACER

    def test_null_tracer_trace_is_none(self):
        assert NULL_TRACER.trace() is None

    def test_disabled_overhead_is_small(self):
        """Guard: a disabled span costs little more than a function call.

        Generous bound (50x an empty loop iteration) so the test stays
        robust on loaded CI machines while still catching accidental
        allocation or real work on the disabled path.
        """
        n = 20_000

        start = time.perf_counter()
        for _ in range(n):
            pass
        baseline = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(n):
            with span("hot", attr=1) as s:
                s.incr("x")
        disabled = time.perf_counter() - start

        assert disabled < max(baseline * 50, 0.25)
