"""PipelineTrace: JSON schema, phase attribution, rendering, protocol."""

import json

import pytest

from repro.codegen import PipelineOptions, generate_configuration
from repro.icelab import icelab_model, icelab_sources
from repro.obs import TRACE_SCHEMA_VERSION, PipelineTrace, Tracer
from repro.sysml import load_model


@pytest.fixture(scope="module")
def traced_result():
    """A full traced run: front end + generation under one tracer."""
    tracer = Tracer()
    with tracer.activate():
        model = load_model(*icelab_sources())
        result = generate_configuration(
            model, options=PipelineOptions(namespace="icelab"))
    return result, tracer.trace()


class TestTraceContents:
    def test_result_carries_its_trace(self, traced_result):
        result, _ = traced_result
        assert isinstance(result.trace, PipelineTrace)
        assert result.trace.find("generate") is not None

    def test_pipeline_phases_are_present(self, traced_result):
        _, trace = traced_result
        for name in ("parse", "resolve", "generate", "topology",
                     "validate", "step1", "step2", "grouping"):
            assert trace.find(name) is not None, name

    def test_per_machine_and_per_template_spans(self, traced_result):
        _, trace = traced_result
        machines = trace.find_all("machine:")
        renders = trace.find_all("render:")
        assert len(machines) == 10  # the ICE lab inventory (Table I)
        assert any(s.name == "machine:emco" for s in machines)
        assert len(renders) >= 10
        assert all(s.attributes.get("bytes", 0) > 0 for s in renders)

    def test_generate_children_sum_to_generation_seconds(
            self, traced_result):
        """Acceptance: per-span timings sum to ~ the end-to-end figure."""
        result, trace = traced_result
        generate = trace.find("generate")
        child_sum = sum(c.duration_s for c in generate.children)
        assert child_sum <= generate.duration_s
        assert child_sum == pytest.approx(result.generation_seconds,
                                          rel=0.25)

    def test_phase_seconds_covers_front_end_and_pipeline(
            self, traced_result):
        _, trace = traced_result
        phases = trace.phase_seconds()
        for name in ("parse", "resolve", "topology", "validate",
                     "step1", "step2"):
            assert name in phases, name
            assert phases[name] >= 0.0
        assert "generate" not in phases  # replaced by its children


class TestTraceExport:
    def test_json_schema(self, traced_result):
        _, trace = traced_result
        document = json.loads(trace.to_json())
        assert document["schema_version"] == TRACE_SCHEMA_VERSION
        assert set(document) == {"schema_version", "name",
                                 "total_seconds", "spans", "metrics"}
        span = document["spans"][0]
        assert set(span) == {"name", "duration_s", "attributes",
                             "counters", "children"}
        assert isinstance(document["metrics"], dict)

    def test_summary_protocol(self, traced_result):
        _, trace = traced_result
        summary = trace.summary()
        assert summary["schema_version"] == TRACE_SCHEMA_VERSION
        assert summary["span_count"] == trace.span_count
        assert json.loads(trace.to_json())  # round-trips

    def test_render_tree(self, traced_result):
        _, trace = traced_result
        text = trace.render()
        assert "generate" in text
        assert "├─" in text and "└─" in text
        assert "ms" in text and "%" in text

    def test_render_depth_limit(self, traced_result):
        _, trace = traced_result
        shallow = trace.render(max_depth=1)
        assert "machine:" not in shallow  # depth-2 spans pruned
        assert "step1" in shallow


class TestDisabledPath:
    def test_untraced_run_has_no_trace(self):
        result = generate_configuration(icelab_model())
        assert result.trace is None

    def test_options_tracer_enables_tracing(self):
        options = PipelineOptions(tracer=Tracer())
        result = generate_configuration(icelab_model(), options=options)
        assert result.trace is not None
        assert result.trace.find("step2") is not None


class TestSummarizable:
    def test_generation_result_summary(self, traced_result):
        result, _ = traced_result
        summary = result.summary()
        assert summary["opcua_servers"] == 6
        assert summary["opcua_clients"] == 4
        assert json.loads(result.to_json())

    def test_diagnostic_report_summary(self):
        from repro.sysml import validate_model
        report = validate_model(icelab_model())
        summary = report.summary()
        assert summary["ok"] is True
        assert isinstance(summary["diagnostics"], list)
        assert json.loads(report.to_json())
