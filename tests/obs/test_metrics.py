"""Process-wide metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs import METRICS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_snapshot(self, registry):
        counter = registry.counter("pipeline.runs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.snapshot()["pipeline.runs"] == 5

    def test_accessor_is_idempotent(self, registry):
        a = registry.counter("same")
        b = registry.counter("same")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_reset(self, registry):
        counter = registry.counter("c")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("pods.running")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12
        assert registry.snapshot()["pods.running"] == 12


class TestHistogram:
    def test_percentiles_nearest_rank(self, registry):
        histogram = registry.histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 100
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p95"] == pytest.approx(95.0, abs=1.0)
        assert snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)

    def test_empty_histogram_snapshot(self, registry):
        snap = registry.histogram("empty").snapshot()
        assert snap["count"] == 0

    def test_single_observation(self, registry):
        histogram = registry.histogram("one")
        histogram.observe(3.5)
        snap = histogram.snapshot()
        assert snap["p50"] == 3.5
        assert snap["p95"] == 3.5
        assert snap["max"] == 3.5


class TestRegistry:
    def test_to_json_is_valid_json(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("h").observe(1.0)
        document = json.loads(registry.to_json())
        assert document["a"] == 1
        assert document["b"] == 2
        assert document["h"]["count"] == 1

    def test_global_registry_collects_pipeline_counters(self):
        """The instrumented pipeline feeds the process-wide registry."""
        from repro.codegen import generate_configuration
        from repro.icelab import icelab_model

        renders = METRICS.counter("templates.renders")
        before = renders.value
        generate_configuration(icelab_model())
        assert renders.value > before
