"""CLI telemetry surfaces: ``generate --trace`` and the ``trace`` command."""

import json

from repro.cli import main
from repro.obs import TRACE_SCHEMA_VERSION


class TestGenerateTrace:
    def test_trace_prints_span_tree(self, capsys):
        assert main(["generate", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "=== pipeline trace ===" in out
        assert "generate" in out
        assert "step1" in out and "step2" in out
        assert "machine:emco" in out
        assert "├─" in out
        # the ordinary summary still prints
        assert "opcua_servers: 6" in out

    def test_trace_to_file_writes_json(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["generate", "--trace", str(target)]) == 0
        assert f"wrote trace JSON to {target}" in capsys.readouterr().out
        document = json.loads(target.read_text())
        assert document["schema_version"] == TRACE_SCHEMA_VERSION
        names = {s["name"] for s in document["spans"]}
        assert "generate" in names

    def test_untraced_generate_prints_no_tree(self, capsys):
        assert main(["generate"]) == 0
        assert "pipeline trace" not in capsys.readouterr().out


class TestTraceCommand:
    def test_report_sections(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "=== pipeline trace ===" in out
        assert "=== phases ===" in out
        assert "=== metrics ===" in out
        for phase in ("parse", "resolve", "topology", "validate",
                      "step1", "step2"):
            assert phase in out, phase

    def test_json_output(self, capsys):
        assert main(["trace", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == TRACE_SCHEMA_VERSION
        assert document["result"]["opcua_servers"] == 6

    def test_trace_a_file(self, tmp_path, capsys):
        source = tmp_path / "icelab.sysml"
        assert main(["model", "--out", str(source)]) == 0
        capsys.readouterr()
        assert main(["trace", str(source)]) == 0
        out = capsys.readouterr().out
        assert "parse" in out
        assert str(source) in out  # the span names the traced file

    def test_front_end_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.sysml"
        bad.write_text("part x : Missing;")
        assert main(["trace", str(bad)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["trace", "--out", str(target)]) == 0
        assert "=== phases ===" in target.read_text()
