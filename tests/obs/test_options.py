"""PipelineOptions: the one configuration object for the pipeline.

Covers the frozen dataclass semantics, dict round-trips, and the
legacy-kwargs deprecation shim (old call sites keep working, warn).
"""

import dataclasses

import pytest

from repro.codegen import (GenerationPipeline, PipelineOptions,
                           generate_configuration)
from repro.obs import Tracer


@pytest.fixture(scope="module")
def model():
    from repro.icelab import icelab_model
    return icelab_model()


class TestDataclassSemantics:
    def test_defaults(self):
        options = PipelineOptions()
        assert options.capacity == 120
        assert options.namespace == "factory"
        assert options.validate is True
        assert options.tracer is None

    def test_frozen(self):
        options = PipelineOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.capacity = 600

    def test_replace(self):
        options = PipelineOptions(namespace="icelab")
        bigger = options.replace(capacity=600)
        assert bigger.capacity == 600
        assert bigger.namespace == "icelab"
        assert options.capacity == 120  # original untouched

    def test_equality_ignores_tracer(self):
        assert (PipelineOptions(tracer=Tracer())
                == PipelineOptions(tracer=None))

    def test_round_trip(self):
        options = PipelineOptions(capacity=300, namespace="plant",
                                  validate=False)
        restored = PipelineOptions.from_dict(options.to_dict())
        assert restored == options

    def test_to_dict_omits_tracer(self):
        options = PipelineOptions(tracer=Tracer())
        assert "tracer" not in options.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown"):
            PipelineOptions.from_dict({"capicity": 600})

    def test_from_dict_reattaches_tracer(self):
        tracer = Tracer()
        options = PipelineOptions.from_dict({"capacity": 60},
                                            tracer=tracer)
        assert options.capacity == 60
        assert options.tracer is tracer


class TestPipelineIntegration:
    def test_pipeline_exposes_options(self):
        options = PipelineOptions(capacity=600, namespace="icelab")
        pipeline = GenerationPipeline(options)
        assert pipeline.options is options
        assert pipeline.capacity == 600
        assert pipeline.namespace == "icelab"

    def test_default_pipeline(self):
        pipeline = GenerationPipeline()
        assert pipeline.options == PipelineOptions()

    def test_options_drive_generation(self, model):
        result = generate_configuration(
            model, options=PipelineOptions(capacity=600))
        assert result.opcua_client_count == 1


class TestLegacyShim:
    def test_generate_configuration_kwargs_warn_but_work(self, model):
        with pytest.warns(DeprecationWarning, match="PipelineOptions"):
            result = generate_configuration(model, capacity=600)
        assert result.opcua_client_count == 1

    def test_pipeline_kwargs_warn_but_work(self, model):
        with pytest.warns(DeprecationWarning, match="PipelineOptions"):
            pipeline = GenerationPipeline(namespace="legacy",
                                          capacity=240)
        assert pipeline.options.namespace == "legacy"
        assert pipeline.options.capacity == 240
        result = pipeline.run_on_model(model)
        assert result.opcua_server_count == 6

    def test_mixing_options_and_kwargs_is_an_error(self, model):
        with pytest.raises(TypeError, match="not both"):
            generate_configuration(
                model, options=PipelineOptions(), capacity=600)

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected"):
            GenerationPipeline(capicity=600)

    def test_no_warning_on_new_style(self, model, recwarn):
        generate_configuration(model, options=PipelineOptions())
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
