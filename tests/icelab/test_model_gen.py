"""ICE-lab model generator tests: the generated model is a valid SysML v2
model that reproduces the paper's structure."""

import pytest

from repro.icelab import (generate_library, icelab_model, icelab_model_text,
                          icelab_topology)
from repro.machines.specs import EMCO_SPEC, ICE_LAB_SPECS
from repro.sysml import validate_model
from repro.sysml.elements import BindingConnector, Connector, PortUsage


@pytest.fixture(scope="module")
def model():
    return icelab_model()


@pytest.fixture(scope="module")
def topology(model):
    from repro.isa95 import extract_topology
    return extract_topology(model)


class TestGeneratedModelWellFormed:
    def test_model_validates_without_errors(self, model):
        report = validate_model(model)
        assert report.ok, str(report)[:2000]

    def test_model_text_is_parseable_prose(self):
        text = icelab_model_text()
        assert "part def EMCODriver :> MachineDriver" in text
        assert ":>> ip = '10.197.12.11';" in text
        assert "part ICETopology : ISA95::Topology" in text

    def test_every_machine_library_generated(self, model):
        for spec in ICE_LAB_SPECS:
            package = model.find(f"{spec.type_name}Lib")
            assert package is not None, spec.type_name

    def test_driver_specializes_correct_base(self, model):
        emco_driver = model.find("EMCOMillingMachineLib::EMCODriver")
        machine_driver = model.find("ISA95::MachineDriver")
        assert emco_driver.conforms_to(machine_driver)
        spea_driver = model.find("SPEATesterLib::OPCUADriver")
        generic = model.find("ISA95::GenericDriver")
        assert spea_driver.conforms_to(generic)

    def test_machine_ports_are_conjugated(self, model):
        emco = topology_machine_usage(model, "emco")
        ports = [e for e in emco.descendants() if isinstance(e, PortUsage)]
        assert ports and all(p.conjugated for p in ports)

    def test_driver_ports_not_conjugated(self, model):
        driver = next(e for e in model.owned_elements
                      if e.name == "emcoDriverInstance")
        ports = [e for e in driver.descendants()
                 if isinstance(e, PortUsage)]
        assert ports and not any(p.conjugated for p in ports)

    def test_binds_resolve(self, model):
        binds = list(model.elements_of_type(BindingConnector))
        # one per variable per side: 2 x 498
        assert len(binds) == 996
        assert all(b.left is not None and b.right is not None
                   for b in binds)

    def test_connects_resolve(self, model):
        connectors = list(model.elements_of_type(Connector))
        # one per variable + one per service (machine side)
        assert len(connectors) == 498 + 66
        assert all(c.source is not None and c.target is not None
                   for c in connectors)


class TestTopologyMatchesTable1:
    def test_counts(self, topology):
        assert topology.summary() == {
            "workcells": 6, "machines": 10,
            "variables": 498, "services": 66}

    def test_hierarchy_names(self, topology):
        assert topology.enterprise == "UniVR"
        assert topology.site == "Verona"
        assert topology.area == "ICELab"
        assert topology.production_lines == ["ICEProductionLine"]

    @pytest.mark.parametrize("machine,variables,services", [
        ("spea", 3, 5), ("emco", 34, 19), ("ur5", 99, 4),
        ("siemensPlc", 26, 8), ("fiam", 12, 3), ("qcPc", 13, 2),
        ("warehouse", 5, 3), ("conveyor", 296, 10),
        ("kairos1", 5, 6), ("kairos2", 5, 6),
    ])
    def test_per_machine_counts(self, topology, machine, variables,
                                services):
        info = topology.machine(machine)
        assert len(info.variables) == variables
        assert len(info.services) == services

    def test_kairos_instances_have_distinct_endpoints(self, topology):
        e1 = topology.machine("kairos1").driver.parameters["endpoint"]
        e2 = topology.machine("kairos2").driver.parameters["endpoint"]
        assert e1 != e2

    def test_emco_driver_parameters(self, topology):
        params = topology.machine("emco").driver.parameters
        assert params["ip"] == "10.197.12.11"
        assert params["ip_port"] == 5557


class TestLibraryGeneration:
    def test_single_machine_library_loads_standalone(self):
        from repro.isa95 import ISA95_LIBRARY_SOURCE
        from repro.sysml import load_model
        source = ISA95_LIBRARY_SOURCE + generate_library(EMCO_SPEC)
        model = load_model(source)
        assert model.find("EMCOMillingMachineLib::EMCODriver") is not None
        assert validate_model(model).ok

    def test_categories_become_part_defs(self):
        text = generate_library(EMCO_SPEC)
        assert "part def AxesPositionsData;" in text
        assert "part def SystemStatusData;" in text


def topology_machine_usage(model, name):
    from repro.sysml.elements import PartUsage
    return next(e for e in model.all_elements()
                if isinstance(e, PartUsage) and e.name == name)
