"""Watch-mode behaviour: polling, partial writes, rolling deploys.

WatchSession takes injectable clock/sleep and a single-step ``poll()``,
so every test drives iterations deterministically — no threads, no
real time, no real file-watcher latency beyond tmp_path mtimes.
"""

import os

import pytest

from fixtures import EMCO_WORKCELL_SOURCE

from repro.cli import main
from repro.codegen import PipelineOptions
from repro.k8s import Cluster
from repro.watch import WatchSession

EDITED_IP = "10.197.12.88"


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "factory.sysml"
    path.write_text(EMCO_WORKCELL_SOURCE)
    return path


def edit(path, old, new):
    text = path.read_text()
    assert old in text
    path.write_text(text.replace(old, new))
    # poll detection is (mtime_ns, size); force mtime forward so
    # same-length edits within one clock tick still register
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


class TestPolling:
    def test_first_poll_generates_everything(self, source_file):
        session = WatchSession([source_file])
        event = session.poll()
        assert event is not None and event.ok
        assert event.changed_files == [str(source_file)]
        assert event.reused == 0
        assert event.regenerated  # every artifact

    def test_unchanged_file_polls_to_none(self, source_file):
        session = WatchSession([source_file])
        session.poll()
        assert session.poll() is None

    def test_touch_without_content_change_reuses_everything(
            self, source_file):
        session = WatchSession([source_file])
        session.poll()
        stat = os.stat(source_file)
        os.utime(source_file,
                 ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        event = session.poll()
        assert event is not None and event.ok
        assert event.regenerated == []

    def test_driver_ip_edit_regenerates_one_machine(self, source_file):
        session = WatchSession([source_file])
        session.poll()
        edit(source_file, "10.197.12.11", EDITED_IP)
        event = session.poll()
        assert event.ok
        assert "machine:emco" in event.regenerated
        assert all(not artifact.startswith("client:")
                   for artifact in event.regenerated)
        assert event.reused > 0


class TestPartialWrites:
    def test_only_changed_files_rewritten(self, source_file, tmp_path):
        out = tmp_path / "out"
        session = WatchSession([source_file], out_dir=out)
        first = session.poll()
        assert len(first.written) == len(first.regenerated)
        edit(source_file, "10.197.12.11", EDITED_IP)
        event = session.poll()
        written = {path.name for path in event.written}
        assert "machine-emco.json" in written
        # untouched outputs keep their bytes and are not rewritten
        assert len(event.written) < len(first.written)
        assert EDITED_IP in (out / "intermediate"
                             / "machine-emco.json").read_text()


class TestBrokenModel:
    def test_parse_error_keeps_previous_generation(self, source_file):
        session = WatchSession([source_file])
        good = session.poll()
        assert good.ok
        previous = session.engine.previous
        edit(source_file, "part ICETopology",
             "part broken : Nowhere;\npart ICETopology")
        event = session.poll()
        assert not event.ok
        assert "Nowhere" in event.error
        assert session.engine.previous is previous  # still serving it

    def test_session_recovers_after_repair(self, source_file):
        session = WatchSession([source_file])
        session.poll()
        edit(source_file, "part ICETopology",
             "part broken : Nowhere;\npart ICETopology")
        assert not session.poll().ok
        edit(source_file, "part broken : Nowhere;\n", "")
        event = session.poll()
        assert event.ok
        assert event.regenerated == []  # back to the known-good state


class TestRollingDeploy:
    def test_first_generation_deploys_everything(self, source_file):
        cluster = Cluster()
        session = WatchSession([source_file], cluster=cluster)
        event = session.poll()
        assert event.deployed["applied"] > 0
        assert event.deployed["running"] > 0

    def test_edit_rolls_only_regenerated_manifests(self, source_file):
        cluster = Cluster()
        session = WatchSession([source_file], cluster=cluster)
        first = session.poll()
        edit(source_file, "10.197.12.11", EDITED_IP)
        event = session.poll()
        assert event.deployed["manifests"] \
            == ["workcell02-opcua-server.yaml"]
        assert event.deployed["applied"] < first.deployed["applied"]
        # a rolled server restarts its downstream bridges/historians
        assert event.deployed["restarted_downstream"] > 0


class TestRunLoop:
    def test_run_counts_rebuilds_not_polls(self, source_file):
        sleeps = []
        session = WatchSession([source_file], interval=0.25,
                               sleep=sleeps.append)

        def edit_on_first(event):
            if event.iteration == 0:
                edit(source_file, "10.197.12.11", EDITED_IP)

        rebuilds = session.run(max_iterations=2, on_event=edit_on_first)
        assert rebuilds == 2
        assert sleeps == [0.25]  # slept between the two rebuilds

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError):
            WatchSession([])


class TestWatchCli:
    def test_once_writes_and_reports(self, source_file, tmp_path, capsys):
        out = tmp_path / "generated"
        assert main(["watch", str(source_file), "--once",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "regenerated" in printed
        assert (out / "manifests").exists()

    def test_once_with_broken_model_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.sysml"
        bad.write_text("part broken : Nowhere;")
        assert main(["watch", str(bad), "--once"]) == 1
        assert "BROKEN MODEL" in capsys.readouterr().out

    def test_max_iterations_loop(self, source_file, capsys):
        assert main(["watch", str(source_file),
                     "--max-iterations", "1", "--interval", "0"]) == 0
        assert "watching 1 file(s)" in capsys.readouterr().out
