"""Machine catalog and ICE-lab spec tests (Table I ground truth)."""

import pytest

from repro.isa95.levels import VariableSpec
from repro.machines import (Catalog, DriverSpec, ICE_LAB_SPECS, MachineSpec,
                            numbered_variables, simple_service)

#: (name, workcell, variables, services) from Table I of the paper.
TABLE_I_ROWS = [
    ("spea", "workCell01", 3, 5),
    ("emco", "workCell02", 34, 19),
    ("ur5", "workCell02", 99, 4),
    ("siemensPlc", "workCell03", 26, 8),
    ("fiam", "workCell03", 12, 3),
    ("qcPc", "workCell04", 13, 2),
    ("warehouse", "workCell05", 5, 3),
    ("conveyor", "workCell06", 296, 10),
    ("kairos1", "workCell06", 5, 6),
    ("kairos2", "workCell06", 5, 6),
]


class TestIceLabSpecs:
    def test_ten_machines(self):
        assert len(ICE_LAB_SPECS) == 10

    @pytest.mark.parametrize("name,workcell,variables,services",
                             TABLE_I_ROWS)
    def test_counts_match_table1(self, name, workcell, variables, services):
        spec = next(s for s in ICE_LAB_SPECS if s.name == name)
        assert spec.workcell == workcell
        assert spec.variable_count == variables
        assert spec.service_count == services

    def test_total_points(self):
        total = sum(s.point_count for s in ICE_LAB_SPECS)
        assert total == 564  # 498 variables + 66 services

    def test_six_workcells(self):
        assert len({s.workcell for s in ICE_LAB_SPECS}) == 6

    def test_driver_kinds(self):
        proprietary = {s.name for s in ICE_LAB_SPECS
                       if not s.driver.is_generic}
        assert proprietary == {"emco", "ur5"}

    def test_opcua_endpoints_unique(self):
        endpoints = [s.driver.parameters["endpoint"]
                     for s in ICE_LAB_SPECS if s.driver.is_generic]
        assert len(endpoints) == len(set(endpoints))

    def test_variable_names_unique_per_machine(self):
        for spec in ICE_LAB_SPECS:
            names = [v.name for v in spec.variables]
            assert len(names) == len(set(names)), spec.name

    def test_variables_carry_categories(self):
        emco = next(s for s in ICE_LAB_SPECS if s.name == "emco")
        categories = {v.category for v in emco.variables}
        assert "AxesPositions" in categories
        assert "SystemStatus" in categories


class TestCatalog:
    def make_spec(self, name="m1"):
        return MachineSpec(
            name=name, display_name=name, type_name="T", workcell="wc",
            driver=DriverSpec(protocol="OPCUADriver", is_generic=True),
            categories={"c": [VariableSpec("v1")]},
            services=[simple_service("go")])

    def test_add_and_get(self):
        catalog = Catalog([self.make_spec()])
        assert catalog.get("m1").name == "m1"
        assert "m1" in catalog
        assert len(catalog) == 1

    def test_duplicate_rejected(self):
        catalog = Catalog([self.make_spec()])
        with pytest.raises(ValueError):
            catalog.add(self.make_spec())

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            Catalog().get("ghost")

    def test_by_workcell(self):
        catalog = Catalog([self.make_spec("a"), self.make_spec("b")])
        assert set(catalog.by_workcell()) == {"wc"}
        assert len(catalog.by_workcell()["wc"]) == 2

    def test_totals(self):
        catalog = Catalog(list(ICE_LAB_SPECS))
        totals = catalog.totals()
        assert totals["machines"] == 10
        assert totals["variables"] == 498
        assert totals["services"] == 66
        assert totals["points"] == 564


class TestSpecValidation:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="duplicate variable"):
            MachineSpec(
                name="m", display_name="m", type_name="T", workcell="wc",
                driver=DriverSpec(protocol="OPCUADriver"),
                categories={"a": [VariableSpec("x")],
                            "b": [VariableSpec("x")]})

    def test_duplicate_services_rejected(self):
        with pytest.raises(ValueError, match="duplicate service"):
            MachineSpec(
                name="m", display_name="m", type_name="T", workcell="wc",
                driver=DriverSpec(protocol="OPCUADriver"),
                services=[simple_service("go"), simple_service("go")])

    def test_category_backfilled_on_variables(self):
        spec = MachineSpec(
            name="m", display_name="m", type_name="T", workcell="wc",
            driver=DriverSpec(protocol="OPCUADriver"),
            categories={"Axes": [VariableSpec("x")]})
        assert spec.variables[0].category == "Axes"

    def test_numbered_variables_helper(self):
        variables = numbered_variables("sensor", 5, data_type="Boolean")
        assert [v.name for v in variables] == [
            "sensor_1", "sensor_2", "sensor_3", "sensor_4", "sensor_5"]
        assert all(v.data_type == "Boolean" for v in variables)
