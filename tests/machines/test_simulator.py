"""Machine simulator tests."""

import pytest

from repro.machines import MachineSimulator, SimulationError
from repro.machines.specs import EMCO_SPEC, UR5_SPEC


@pytest.fixture
def emco():
    return MachineSimulator(EMCO_SPEC, seed=7)


class TestVariables:
    def test_initial_values_typed(self, emco):
        assert emco.read("actual_X") == 0.0
        assert emco.read("tool_number") == 0
        assert emco.read("emergency_stop") is False
        assert isinstance(emco.read("operating_mode"), str)

    def test_unknown_variable(self, emco):
        with pytest.raises(SimulationError):
            emco.read("nonexistent")
        with pytest.raises(SimulationError):
            emco.write("nonexistent", 1)

    def test_write_and_listener(self, emco):
        seen = []
        emco.on_change(lambda n, v: seen.append((n, v)))
        emco.write("actual_X", 5.0)
        assert seen == [("actual_X", 5.0)]

    def test_variables_snapshot(self, emco):
        snapshot = emco.variables()
        assert len(snapshot) == 34
        snapshot["actual_X"] = 99.0  # copies don't alias
        assert emco.read("actual_X") == 0.0


class TestServices:
    def test_call_returns_typed_outputs(self, emco):
        result = emco.call("is_ready")
        assert result == (True,)

    def test_call_with_arguments(self, emco):
        assert emco.call("move_to", 1.0, 2.0, 3.0) == (True,)

    def test_wrong_arity(self, emco):
        with pytest.raises(SimulationError, match="expects 3"):
            emco.call("move_to", 1.0)

    def test_unknown_service(self, emco):
        with pytest.raises(SimulationError):
            emco.call("self_destruct")

    def test_start_sets_busy_and_status(self, emco):
        emco.call("start_program")
        assert emco.busy
        assert emco.read("program_status") == "running"
        assert emco.call("is_ready") == (False,)

    def test_stop_clears_busy(self, emco):
        emco.call("start_program")
        emco.call("stop_program")
        assert not emco.busy
        assert emco.call("is_ready") == (True,)

    def test_reset_clears_error_code(self, emco):
        emco.write("error_code", 42)
        emco.call("reset_errors")
        assert emco.read("error_code") == 0

    def test_call_log(self, emco):
        emco.call("is_ready")
        emco.call("load_program", "part42.nc")
        assert emco.call_log == [("is_ready", ()),
                                 ("load_program", ("part42.nc",))]

    def test_string_output_default(self, emco):
        assert emco.call("get_status") == ("ok",)


class TestStep:
    def test_step_advances_clock(self, emco):
        emco.step(0.5)
        assert emco.clock == 0.5

    def test_step_perturbs_reals(self, emco):
        before = emco.read("spindle_speed")
        for _ in range(5):
            emco.step()
        assert emco.read("spindle_speed") != before

    def test_deterministic_given_seed(self):
        a = MachineSimulator(EMCO_SPEC, seed=3)
        b = MachineSimulator(EMCO_SPEC, seed=3)
        for _ in range(10):
            a.step()
            b.step()
        assert a.variables() == b.variables()

    def test_different_seeds_diverge(self):
        a = MachineSimulator(EMCO_SPEC, seed=1)
        b = MachineSimulator(EMCO_SPEC, seed=2)
        for _ in range(10):
            a.step()
            b.step()
        assert a.variables() != b.variables()

    def test_string_variables_stay_in_vocabulary(self):
        sim = MachineSimulator(UR5_SPEC, seed=5)
        for _ in range(50):
            sim.step()
        assert sim.read("robot_mode") in (
            "idle", "running", "paused", "error", "manual", "automatic",
            "maintenance")

    def test_step_fires_listeners(self, emco):
        events = []
        emco.on_change(lambda n, v: events.append(n))
        emco.step()
        assert events  # real variables drift every step
