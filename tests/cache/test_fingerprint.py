"""Fingerprint properties: stability, sensitivity, unambiguity."""

import pytest

from repro.fingerprint import canonical_json, fingerprint


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert (canonical_json({"a": 1, "b": 2})
                == canonical_json({"b": 2, "a": 1}))

    def test_compact(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_non_json_values_stringified(self):
        class Odd:
            def __str__(self):
                return "odd"
        assert canonical_json({"x": Odd()}) == '{"x":"odd"}'


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint("a", {"k": 1}) == fingerprint("a", {"k": 1})

    def test_hex_sha256_shaped(self):
        key = fingerprint("payload")
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_sensitive_to_any_part(self):
        base = fingerprint("a", "b")
        assert fingerprint("a", "c") != base
        assert fingerprint("x", "b") != base

    def test_sensitive_to_salt(self):
        assert (fingerprint("a", salt="layer/1")
                != fingerprint("a", salt="layer/2"))

    def test_part_boundaries_unambiguous(self):
        # length-prefixing means concatenation can't collide
        assert fingerprint("ab", "c") != fingerprint("a", "bc")
        assert fingerprint("abc") != fingerprint("ab", "c")

    def test_bytes_and_str_parts_accepted(self):
        assert fingerprint(b"raw") == fingerprint("raw")

    def test_dict_key_order_irrelevant(self):
        assert (fingerprint({"a": 1, "b": 2})
                == fingerprint({"b": 2, "a": 1}))
