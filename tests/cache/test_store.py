"""Artifact-cache store behaviour: codecs, corruption, LRU, counters."""

import json
import os
import pickle

import pytest

from repro.cache import ArtifactCache
from repro.fingerprint import fingerprint
from repro.obs import METRICS


def _raise_oom():
    raise MemoryError("simulated allocation failure")


class _OutOfMemory:
    """Pickles fine; unpickling raises MemoryError."""

    def __reduce__(self):
        return (_raise_oom, ())


@pytest.fixture()
def cache(tmp_path):
    METRICS.reset()
    return ArtifactCache(tmp_path / "cache")


def _counters():
    snap = METRICS.snapshot()
    return (snap.get("cache.hits", 0), snap.get("cache.misses", 0),
            snap.get("cache.evictions", 0))


class TestCodecs:
    def test_bytes_roundtrip(self, cache):
        key = fingerprint("bytes")
        assert cache.get_bytes(key) is None
        cache.put_bytes(key, b"\x00payload")
        assert cache.get_bytes(key) == b"\x00payload"

    def test_text_roundtrip(self, cache):
        key = fingerprint("text")
        cache.put_text(key, "héllo")
        assert cache.get_text(key) == "héllo"

    def test_json_roundtrip(self, cache):
        key = fingerprint("json")
        cache.put_json(key, {"b": 1, "a": [2, 3]})
        assert cache.get_json(key) == {"b": 1, "a": [2, 3]}

    def test_json_preserves_key_order(self, cache):
        # replayed configs must serialize byte-identically, so the
        # codec must not sort keys
        key = fingerprint("ordered")
        cache.put_json(key, {"z": 1, "a": 2})
        assert list(cache.get_json(key)) == ["z", "a"]

    def test_object_roundtrip(self, cache):
        key = fingerprint("obj")
        cache.put_object(key, {"nested": (1, 2)})
        assert cache.get_object(key) == {"nested": (1, 2)}

    def test_counters_account_hits_and_misses(self, cache):
        key = fingerprint("counted")
        cache.get_text(key)          # miss
        cache.put_text(key, "x")
        cache.get_text(key)          # hit
        cache.get_text(fingerprint("other"))  # miss
        hits, misses, _ = _counters()
        assert (hits, misses) == (1, 2)


class TestCorruption:
    def test_truncated_json_is_a_miss_and_discarded(self, cache):
        key = fingerprint("broken-json")
        cache.put_json(key, {"a": 1})
        path = cache._path(key)
        path.write_bytes(b'{"a":')
        assert cache.get_json(key) is None
        assert not path.exists()
        hits, misses, _ = _counters()
        assert hits == 0 and misses == 1

    def test_corrupt_pickle_is_a_miss_and_discarded(self, cache):
        key = fingerprint("broken-pickle")
        cache.put_object(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get_object(key) is None
        assert not cache._path(key).exists()

    def test_invalid_utf8_text_is_a_miss(self, cache):
        key = fingerprint("broken-text")
        cache.put_bytes(key, b"\xff\xfe\x00")
        assert cache.get_text(key) is None

    def test_corruption_counter_and_eviction(self, cache):
        key = fingerprint("counted-corruption")
        cache.put_json(key, {"a": 1})
        cache._path(key).write_bytes(b"\x00not json\xff")
        assert cache.get_json(key) is None
        assert not cache._path(key).exists()
        snap = METRICS.snapshot()
        assert snap.get("cache.corruption", 0) == 1
        assert cache.stats()["corruption"] == 1

    def test_nondecode_errors_propagate_from_get_object(self, cache):
        # the old bare `except Exception` swallowed *everything*; the
        # narrowed handler must let resource exhaustion through
        key = fingerprint("oom-pickle")
        cache.put_bytes(key, pickle.dumps(_OutOfMemory()))
        with pytest.raises(MemoryError):
            cache.get_object(key)


class TestEviction:
    def test_lru_eviction_keeps_total_under_bound(self, tmp_path):
        METRICS.reset()
        small = ArtifactCache(tmp_path / "small", max_bytes=1024)
        for index in range(10):
            small.put_bytes(fingerprint(f"entry-{index}"), b"x" * 300)
        stats = small.stats()
        assert stats["total_bytes"] <= 1024
        assert stats["evictions"] > 0

    def test_recently_read_entries_survive(self, tmp_path):
        METRICS.reset()
        small = ArtifactCache(tmp_path / "small", max_bytes=1000)
        hot = fingerprint("hot")
        small.put_bytes(hot, b"h" * 300)
        for index in range(6):
            os.utime(small._path(hot))  # keep refreshing recency
            small.put_bytes(fingerprint(f"cold-{index}"), b"c" * 300)
            small.get_bytes(hot)
        assert small.get_bytes(hot) is not None


class TestMaintenance:
    def test_clear_removes_everything(self, cache):
        for index in range(4):
            cache.put_text(fingerprint(f"e{index}"), "data")
        assert cache.clear() == 4
        assert cache.stats()["entries"] == 0
        assert cache.get_text(fingerprint("e0")) is None

    def test_stats_shape(self, cache):
        cache.put_json(fingerprint("s"), {"a": 1})
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] == len(json.dumps({"a": 1},
                                                      separators=(",", ":")))
        assert set(stats) == {"directory", "entries", "total_bytes",
                              "max_bytes", "hits", "misses", "evictions",
                              "corruption", "io_errors"}

    def test_overwrite_same_key_is_idempotent(self, cache):
        key = fingerprint("same")
        cache.put_text(key, "one")
        cache.put_text(key, "two")
        assert cache.get_text(key) == "two"
        assert cache.stats()["entries"] == 1

    def test_stats_snapshots_index_under_store_lock(self, cache):
        # regression: stats() used to walk the directory without the
        # lock, so a concurrent put's evict pass could unlink files
        # between glob and stat, mixing pre- and post-eviction counts
        cache.put_text(fingerprint("locked"), "data")
        seen = []
        original = cache._entries

        def guarded():
            seen.append(cache._lock.locked())
            return original()

        cache._entries = guarded
        stats = cache.stats()
        assert seen == [True]
        assert stats["entries"] == 1
