"""ArtifactCache under concurrent access (the serving workload).

The service shares one cache across request threads, so simultaneous
writers of the same key, readers racing those writers, and eviction
racing both must never raise or return corrupt data: every read is
either a miss (None) or a complete, valid value.
"""

import json
import threading

from repro.cache import ArtifactCache
from repro.fingerprint import fingerprint


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
    assert not any(thread.is_alive() for thread in threads)


class TestConcurrentSameKey:
    def test_two_threads_writing_and_reading_one_key(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        payload = json.dumps({"value": list(range(200))}).encode()
        errors = []
        observed = []

        def writer():
            try:
                for _ in range(50):
                    cache.put_bytes("shared", payload)
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        def reader():
            try:
                for _ in range(50):
                    observed.append(cache.get_bytes("shared"))
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        run_threads([writer, writer, reader, reader])
        assert errors == []
        # every read saw nothing (not yet written) or the full payload
        assert set(observed) <= {None, payload}
        assert cache.get_bytes("shared") == payload

    def test_distinct_value_writers_leave_a_complete_value(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        values = [json.dumps({"writer": i}).encode() for i in range(4)]
        errors = []

        def writer(i):
            try:
                for _ in range(25):
                    cache.put_bytes("contested", values[i])
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        run_threads([lambda i=i: writer(i) for i in range(4)])
        assert errors == []
        assert cache.get_bytes("contested") in values  # no torn write


class TestRacingEviction:
    def test_writers_racing_eviction_stay_consistent(self, tmp_path):
        # max_bytes small enough that every write triggers eviction
        cache = ArtifactCache(tmp_path, max_bytes=2_000)
        payload = b"x" * 500
        errors = []

        def writer(worker):
            try:
                for i in range(40):
                    key = fingerprint(f"w{worker}-k{i % 8}")
                    cache.put_bytes(key, payload)
                    value = cache.get_bytes(key)
                    # evicted-by-neighbor or intact, never corrupt
                    assert value in (None, payload)
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        run_threads([lambda w=w: writer(w) for w in range(4)])
        assert errors == []
        stats = cache.stats()
        assert stats["total_bytes"] <= 2_000
        assert stats["evictions"] > 0
        # survivors all hold complete payloads
        for _, _, path in cache._entries():
            assert path.read_bytes() == payload

    def test_clear_racing_writers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        errors = []
        stop = threading.Event()

        def writer():
            try:
                i = 0
                while not stop.is_set():
                    cache.put_bytes(fingerprint(f"k{i % 16}"), b"payload")
                    i += 1
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        def clearer():
            try:
                for _ in range(20):
                    cache.clear()
            finally:
                stop.set()

        run_threads([writer, writer, clearer])
        assert errors == []
