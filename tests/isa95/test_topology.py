"""ISA-95 topology extraction tests on a hand-written mini factory."""

import pytest

from repro.isa95 import (ISA95_LIBRARY_SOURCE, TopologyError,
                         extract_topology, validate_topology)
from repro.sysml import load_model

MINI_FACTORY = ISA95_LIBRARY_SOURCE + """
package MiniLib {
    import ISA95::*;
    part def MiniDriver :> MachineDriver {
        part def MiniParameters :> Driver::DriverParameters {
            attribute ip : String;
            attribute ip_port : Integer;
        }
        part def MiniVariables :> Driver::DriverVariables {
            port def MiniVar {
                in attribute value : Real;
                attribute identifier : String;
            }
        }
        part def MiniMethods :> Driver::DriverMethods {
            port def MiniMethod {
                attribute description : String;
                out action operation { out ok : Boolean; }
            }
        }
    }
    part def MiniMill :> Machine {
        part def MiniData :> Machine::MachineData {
            part def Axes;
        }
        part def MiniServices :> Machine::MachineServices;
    }
}

part factory : ISA95::Topology {
    part acme : ISA95::Topology::Enterprise {
        part plant1 : ISA95::Topology::Enterprise::Site {
            part hall : ISA95::Topology::Enterprise::Site::Area {
                part line1 :
                    ISA95::Topology::Enterprise::Site::Area::ProductionLine {
                    part wc1 : ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell {
                        part mill : MiniLib::MiniMill {
                            ref part millDriver : MiniLib::MiniDriver;
                            part data : MiniData {
                                part axes : Axes {
                                    attribute posX : Real;
                                    attribute posY : Real;
                                }
                                attribute mode : String;
                            }
                            part services : MiniServices {
                                action isReady { out ready : Boolean; }
                                action start {
                                    in program : String;
                                    out ok : Boolean;
                                }
                            }
                        }
                    }
                    part wc2 : ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell {
                    }
                }
            }
        }
    }
}

part millDriver : MiniLib::MiniDriver {
    part params : MiniParameters {
        :>> ip = '10.0.0.5';
        :>> ip_port = 5557;
    }
    part vars : MiniVariables {
        attribute posX : Real;
        port posX_port : MiniVar;
        bind posX_port.value = posX;
    }
    part methods : MiniMethods {
        port is_ready_port : MiniMethod;
    }
}
"""


@pytest.fixture(scope="module")
def topology():
    return extract_topology(load_model(MINI_FACTORY))


class TestHierarchy:
    def test_levels(self, topology):
        assert topology.enterprise == "acme"
        assert topology.site == "plant1"
        assert topology.area == "hall"
        assert topology.production_lines == ["line1"]

    def test_workcells(self, topology):
        assert [w.name for w in topology.workcells] == ["wc1", "wc2"]
        assert topology.workcell("wc1").production_line == "line1"

    def test_machine_placement(self, topology):
        assert [m.name for m in topology.workcell("wc1").machines] == ["mill"]
        assert topology.workcell("wc2").machines == []

    def test_machine_accessors(self, topology):
        machine = topology.machine("mill")
        assert machine.type_name == "MiniMill"
        assert machine.workcell == "wc1"
        with pytest.raises(KeyError):
            topology.machine("ghost")
        with pytest.raises(KeyError):
            topology.workcell("ghost")


class TestMachineExtraction:
    def test_variables_with_categories(self, topology):
        machine = topology.machine("mill")
        names = {v.name: v for v in machine.variables}
        assert set(names) == {"posX", "posY", "mode"}
        assert names["posX"].category == "axes"
        assert names["mode"].category == ""
        assert names["posX"].data_type == "Real"
        assert names["mode"].data_type == "String"

    def test_services_with_arguments(self, topology):
        machine = topology.machine("mill")
        services = {s.name: s for s in machine.services}
        assert set(services) == {"isReady", "start"}
        start = services["start"]
        assert [a.name for a in start.inputs] == ["program"]
        assert [a.name for a in start.outputs] == ["ok"]
        assert start.inputs[0].data_type == "String"

    def test_point_count(self, topology):
        assert topology.machine("mill").point_count == 5

    def test_summary(self, topology):
        summary = topology.summary()
        assert summary == {"workcells": 2, "machines": 1,
                           "variables": 3, "services": 2}


class TestDriverExtraction:
    def test_driver_resolved(self, topology):
        driver = topology.machine("mill").driver
        assert driver is not None
        assert driver.protocol == "MiniDriver"
        assert not driver.is_generic

    def test_driver_parameters(self, topology):
        driver = topology.machine("mill").driver
        assert driver.parameters == {"ip": "10.0.0.5", "ip_port": 5557}

    def test_driver_point_counts(self, topology):
        driver = topology.machine("mill").driver
        assert driver.variable_count == 1  # one port in vars
        assert driver.method_count == 1


class TestErrors:
    def test_missing_library(self):
        model = load_model("part def Lonely;")
        with pytest.raises(TopologyError, match="ISA95 base library"):
            extract_topology(model)

    def test_no_topology_root(self):
        model = load_model(ISA95_LIBRARY_SOURCE)
        with pytest.raises(TopologyError, match="no top-level part"):
            extract_topology(model)

    def test_multiple_roots_rejected(self):
        model = load_model(ISA95_LIBRARY_SOURCE + """
            part f1 : ISA95::Topology {
                part wcA : ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell;
            }
            part f2 : ISA95::Topology {
                part wcB : ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell;
            }
        """)
        with pytest.raises(TopologyError, match="multiple topology roots"):
            extract_topology(model)

    def test_empty_topology_rejected(self):
        model = load_model(ISA95_LIBRARY_SOURCE +
                           "part f : ISA95::Topology { }")
        with pytest.raises(TopologyError, match="no\\s+workcells"):
            extract_topology(model)


class TestTopologyValidation:
    def test_mini_factory_reports(self, topology):
        report = validate_topology(topology)
        # wc2 is empty -> warning; mill driver is fine
        assert report.ok
        assert any(d.rule == "empty-workcell" for d in report.warnings)

    def test_missing_driver_flagged(self):
        from repro.isa95.levels import (FactoryTopology, MachineInfo,
                                        WorkcellInfo)
        topo = FactoryTopology(enterprise="e", site="s", area="a",
                               production_lines=["l"])
        wc = WorkcellInfo(name="wc", production_line="l")
        wc.machines.append(MachineInfo(name="m", type_name="T",
                                       workcell="wc"))
        topo.workcells.append(wc)
        report = validate_topology(topo)
        assert any(d.rule == "missing-driver" for d in report.errors)

    def test_duplicate_machine_names_flagged(self):
        from repro.isa95.levels import (DriverInfo, FactoryTopology,
                                        MachineInfo, WorkcellInfo)
        topo = FactoryTopology(production_lines=["l"])
        wc = WorkcellInfo(name="wc", production_line="l")
        for _ in range(2):
            wc.machines.append(MachineInfo(
                name="same", type_name="T", workcell="wc",
                driver=DriverInfo(name="d", protocol="OPCUADriver",
                                  is_generic=True,
                                  parameters={"endpoint": "opc.tcp://x:1"})))
        topo.workcells.append(wc)
        report = validate_topology(topo)
        assert any(d.rule == "duplicate-name" for d in report.errors)

    def test_missing_parameter_warned(self):
        from repro.isa95.levels import (DriverInfo, FactoryTopology,
                                        MachineInfo, WorkcellInfo)
        topo = FactoryTopology(production_lines=["l"])
        wc = WorkcellInfo(name="wc", production_line="l")
        wc.machines.append(MachineInfo(
            name="m", type_name="T", workcell="wc",
            driver=DriverInfo(name="d", protocol="OPCUADriver",
                              is_generic=True)))
        topo.workcells.append(wc)
        report = validate_topology(topo)
        assert any(d.rule == "missing-driver-parameter"
                   for d in report.warnings)


class TestExtractMachineAt:
    """Standalone re-elaboration of one machine usage must reproduce
    exactly what whole-model extraction produces — the incremental
    engine splices its output into a retained topology."""

    def test_equivalent_to_full_extraction(self):
        from dataclasses import asdict

        from repro.isa95.topology import TopologyExtractor
        from repro.sysml.depgraph import find_by_path

        model = load_model(MINI_FACTORY, record_deps=True)
        full = extract_topology(model).machine("mill")
        usage = find_by_path(model, full.node_path)
        alone = TopologyExtractor(model).extract_machine_at(
            usage, full.workcell)
        assert asdict(alone) == asdict(full)

    def test_node_paths_populated(self, topology):
        machine = topology.machine("mill")
        assert machine.node_path.endswith("::mill")
        assert machine.driver.node_path
