"""Time-series store tests."""

import pytest

from repro.storage import StorageError, TimeSeriesStore


@pytest.fixture
def store():
    return TimeSeriesStore()


class TestWrites:
    def test_write_creates_series(self, store):
        store.write("machine_data", 1.0, timestamp=1.0,
                    tags={"machine": "emco"})
        assert store.series_count == 1
        assert store.stats()["points"] == 1

    def test_same_tags_same_series(self, store):
        for i in range(3):
            store.write("m", i, timestamp=float(i), tags={"a": "1"})
        assert store.series_count == 1
        assert len(store.series("m")[0]) == 3

    def test_different_tags_different_series(self, store):
        store.write("m", 1, timestamp=1.0, tags={"machine": "emco"})
        store.write("m", 2, timestamp=1.0, tags={"machine": "ur5"})
        assert store.series_count == 2

    def test_tag_order_irrelevant(self, store):
        store.write("m", 1, timestamp=1.0, tags={"a": "1", "b": "2"})
        store.write("m", 2, timestamp=2.0, tags={"b": "2", "a": "1"})
        assert store.series_count == 1

    def test_out_of_order_timestamps_sorted(self, store):
        store.write("m", "late", timestamp=10.0)
        store.write("m", "early", timestamp=5.0)
        points = store.query("m")
        assert [p.value for p in points] == ["early", "late"]


class TestQueries:
    def setup_store(self, store):
        for i in range(10):
            store.write("m", float(i), timestamp=float(i),
                        tags={"machine": "emco"})
        for i in range(5):
            store.write("m", 100.0 + i, timestamp=float(i),
                        tags={"machine": "ur5"})

    def test_query_all(self, store):
        self.setup_store(store)
        assert len(store.query("m")) == 15

    def test_query_by_tags(self, store):
        self.setup_store(store)
        points = store.query("m", tags={"machine": "emco"})
        assert len(points) == 10

    def test_query_time_range(self, store):
        self.setup_store(store)
        points = store.query("m", tags={"machine": "emco"},
                             start=2.0, end=4.0)
        assert [p.value for p in points] == [2.0, 3.0, 4.0]

    def test_query_results_time_ordered(self, store):
        self.setup_store(store)
        points = store.query("m")
        assert [p.timestamp for p in points] == \
            sorted(p.timestamp for p in points)

    def test_latest(self, store):
        self.setup_store(store)
        latest = store.latest("m", tags={"machine": "emco"})
        assert latest.value == 9.0

    def test_latest_empty(self, store):
        assert store.latest("nothing") is None

    def test_aggregate(self, store):
        self.setup_store(store)
        total = store.aggregate("m", sum, tags={"machine": "emco"})
        assert total == sum(range(10))

    def test_aggregate_empty_raises(self, store):
        with pytest.raises(StorageError):
            store.aggregate("nothing", sum)

    def test_measurements_listing(self, store):
        store.write("a", 1, timestamp=0.0)
        store.write("b", 1, timestamp=0.0)
        assert store.measurements() == ["a", "b"]

    def test_series_tag_subset_filter(self, store):
        store.write("m", 1, timestamp=0.0,
                    tags={"machine": "emco", "wc": "02"})
        assert len(store.series("m", tags={"wc": "02"})) == 1
        assert store.series("m", tags={"wc": "03"}) == []
