"""Retention pruning and windowed downsampling tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import StorageError, TimeSeriesStore


@pytest.fixture
def store():
    s = TimeSeriesStore()
    for i in range(10):
        s.write("m", float(i), timestamp=float(i), tags={"machine": "a"})
    return s


class TestPrune:
    def test_prune_drops_old_points(self, store):
        dropped = store.prune(before=5.0)
        assert dropped == 5
        points = store.query("m")
        assert [p.timestamp for p in points] == [5.0, 6.0, 7.0, 8.0, 9.0]

    def test_prune_removes_empty_series(self, store):
        store.prune(before=100.0)
        assert store.series_count == 0

    def test_prune_noop(self, store):
        assert store.prune(before=0.0) == 0
        assert store.series_count == 1

    def test_prune_idempotent(self, store):
        store.prune(before=5.0)
        assert store.prune(before=5.0) == 0


class TestDownsample:
    def test_mean_per_window(self, store):
        points = store.downsample("m", window=5.0)
        assert [(p.timestamp, p.value) for p in points] == [
            (0.0, 2.0), (5.0, 7.0)]

    def test_custom_reducer(self, store):
        points = store.downsample("m", window=5.0, reducer=max)
        assert [p.value for p in points] == [4.0, 9.0]

    def test_window_alignment(self):
        store = TimeSeriesStore()
        store.write("m", 1.0, timestamp=7.2)
        store.write("m", 3.0, timestamp=7.9)
        points = store.downsample("m", window=2.0)
        assert points[0].timestamp == 6.0
        assert points[0].value == 2.0

    def test_non_numeric_points_skipped(self):
        store = TimeSeriesStore()
        store.write("m", "text", timestamp=0.0)
        store.write("m", True, timestamp=0.5)
        store.write("m", 4.0, timestamp=1.0)
        points = store.downsample("m", window=10.0)
        assert [p.value for p in points] == [4.0]

    def test_tag_filter(self, store):
        store.write("m", 100.0, timestamp=0.0, tags={"machine": "b"})
        points = store.downsample("m", window=100.0,
                                  tags={"machine": "b"})
        assert [p.value for p in points] == [100.0]

    def test_bad_window_rejected(self, store):
        with pytest.raises(StorageError):
            store.downsample("m", window=0.0)

    def test_empty_result(self):
        assert TimeSeriesStore().downsample("nothing", window=1.0) == []


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=-100, max_value=100, allow_nan=False)),
    min_size=1, max_size=40),
    st.floats(min_value=0.5, max_value=50))
def test_downsample_properties(samples, window):
    store = TimeSeriesStore()
    for timestamp, value in samples:
        store.write("m", value, timestamp=timestamp)
    points = store.downsample("m", window=window)
    # windows are ordered, aligned, and means stay within value bounds
    timestamps = [p.timestamp for p in points]
    assert timestamps == sorted(timestamps)
    values = [v for _, v in samples]
    for point in points:
        remainder = point.timestamp % window
        # float alignment: remainder is ~0 or ~window
        assert min(remainder, window - remainder) < 1e-6 * max(1.0, window)
        assert min(values) - 1e-9 <= point.value <= max(values) + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=1, max_size=30),
       st.floats(min_value=0, max_value=100))
def test_prune_properties(timestamps, cutoff):
    store = TimeSeriesStore()
    for timestamp in timestamps:
        store.write("m", 1.0, timestamp=timestamp)
    total = len(timestamps)
    dropped = store.prune(before=cutoff)
    remaining = len(store.query("m"))
    assert dropped + remaining == total
    assert all(p.timestamp >= cutoff for p in store.query("m"))
