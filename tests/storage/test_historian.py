"""Historian (broker -> time-series store) tests."""

import pytest

from repro.broker import MessageBroker
from repro.storage import Historian, HistorianConfig, TimeSeriesStore


@pytest.fixture
def broker():
    return MessageBroker()


@pytest.fixture
def store():
    return TimeSeriesStore()


def make_historian(broker, store, machines=None):
    config = HistorianConfig(name="hist-1", topic_root="icelab/line1",
                             machines=machines or [])
    historian = Historian(config, broker, store)
    historian.start()
    return historian


class TestHistorian:
    def test_records_machine_data(self, broker, store):
        historian = make_historian(broker, store)
        broker.publish("icelab/line1/wc02/emco/data/actualX",
                       {"value": 1.5, "timestamp": 10.0})
        assert historian.records == 1
        points = store.query("machine_data",
                             tags={"machine": "emco", "variable": "actualX"})
        assert len(points) == 1
        assert points[0].value == 1.5
        assert points[0].timestamp == 10.0

    def test_tags_include_workcell(self, broker, store):
        make_historian(broker, store)
        broker.publish("icelab/line1/wc03/plc/data/temp",
                       {"value": 55.0, "timestamp": 1.0})
        series = store.series("machine_data", tags={"workcell": "wc03"})
        assert len(series) == 1

    def test_scalar_payload_accepted(self, broker, store):
        make_historian(broker, store)
        broker.publish("icelab/line1/wc02/emco/data/mode", "auto")
        assert store.latest("machine_data",
                            tags={"variable": "mode"}).value == "auto"

    def test_machine_filter(self, broker, store):
        historian = make_historian(broker, store, machines=["emco", "ur5"])
        broker.publish("icelab/line1/wc02/emco/data/x", {"value": 1})
        broker.publish("icelab/line1/wc02/spea/data/x", {"value": 2})
        assert historian.records == 1
        assert store.series("machine_data", tags={"machine": "spea"}) == []

    def test_non_data_topics_ignored(self, broker, store):
        historian = make_historian(broker, store)
        broker.publish("icelab/line1/wc02/emco/status/alive", {"value": 1})
        assert historian.records == 0

    def test_malformed_topic_counted(self, broker, store):
        # the wildcard filter already excludes malformed topics; the
        # defensive counter guards against misconfigured topic roots
        historian = make_historian(broker, store)
        historian._on_data("icelab/line1/wc02/emco/data/a/b", {"value": 1})
        assert historian.malformed == 1
        assert historian.records == 0

    def test_stop_ends_recording(self, broker, store):
        historian = make_historian(broker, store)
        historian.stop()
        broker.publish("icelab/line1/wc02/emco/data/x", {"value": 1})
        assert historian.records == 0
        assert not historian.running

    def test_two_historians_partition_by_machine(self, broker, store):
        h1 = make_historian(broker, store, machines=["emco"])
        h2 = make_historian(broker, store, machines=["ur5"])
        broker.publish("icelab/line1/wc02/emco/data/x", {"value": 1})
        broker.publish("icelab/line1/wc02/ur5/data/y", {"value": 2})
        assert h1.records == 1
        assert h2.records == 1
