"""Shared model sources used across the test suite.

``EMCO_WORKCELL_SOURCE`` is a faithful expansion of the paper's running
example (Codes 1-5): the ISA-95 base library, the EMCO driver/machine
specializations, and the instantiated workcell 02 topology with bound
ports and a performed method.
"""

ISA95_BASE_SOURCE = """
package ISA95 {
    doc /* ISA-95 base library: hierarchy plus Machine/Driver abstractions. */
    abstract part def Driver {
        part def DriverParameters;
        part def DriverVariables;
        part def DriverMethods;
    }
    abstract part def MachineDriver :> Driver;
    abstract part def GenericDriver :> Driver;
    abstract part def Machine {
        part def MachineData;
        part def MachineServices;
        ref part driver : Driver;
    }
    part def Topology {
        part def Enterprise {
            part def Site {
                part def Area {
                    part def ProductionLine {
                        attribute def ProductionLineVariables;
                        part def Workcell {
                            ref part machines : Machine [*];
                            part def WorkCellVariables;
                        }
                    }
                }
            }
        }
    }
}
"""

EMCO_LIBRARY_SOURCE = """
package EMCO {
    import ISA95::*;
    part def EMCODriver :> MachineDriver {
        part def EMCOParameters :> Driver::DriverParameters {
            attribute ip : String;
            attribute ip_port : Integer;
            attribute program_file_path : String;
        }
        part def EMCOVariables :> Driver::DriverVariables {
            port def EMCOVar {
                in attribute value : Real;
                attribute description : String;
                attribute identifier : String;
            }
            part def AxesPositions;
            part def SystemStatus;
        }
        part def EMCOMethods :> Driver::DriverMethods {
            port def EMCOMethod {
                attribute description : String;
                out action operation {
                    out ready : Boolean;
                }
            }
        }
    }
    part def EMCO :> Machine {
        part def EMCOMachineData :> Machine::MachineData {
            part def AxesPositions;
            part def SystemStatus;
        }
        part def EMCOServices :> Machine::MachineServices;
    }
}
"""

EMCO_INSTANCE_SOURCE = """
part ICETopology : ISA95::Topology {
    part UniVR : ISA95::Topology::Enterprise {
        part Verona : ISA95::Topology::Enterprise::Site {
            part ICELab : ISA95::Topology::Enterprise::Site::Area {
                part ICEProductionLine :
                        ISA95::Topology::Enterprise::Site::Area::ProductionLine {
                    part workCell02 :
                            ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell {
                        part emco : EMCO::EMCO {
                            ref part emcoDriverRef : EMCO::EMCODriver;
                            part emcoMachineData : EMCOMachineData {
                                part emcoAxesPosition : AxesPositions {
                                    attribute actualX : Real;
                                    port actual_X_EMCOVar_conj :
                                        ~EMCO::EMCODriver::EMCOVariables::EMCOVar;
                                    bind actual_X_EMCOVar_conj.value = actualX;
                                }
                                part emcoSystemStatus : SystemStatus;
                            }
                            part emcoServices : EMCOServices {
                                action isReady {
                                    out ready : Boolean;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

part emcoDriver : EMCO::EMCODriver {
    part emcoParameters : EMCOParameters {
        :>> ip = '10.197.12.11';
        :>> ip_port = 5557;
        :>> program_file_path = 'path/program/file';
    }
    part emcoVariables : EMCOVariables {
        part emcoSystemStatus : SystemStatus;
        part emcoAxesPositions : AxesPositions {
            attribute actualX : Real;
            port pp_actual_X_EMCOVar : EMCOVar;
            bind pp_actual_X_EMCOVar.value = actualX;
        }
    }
    part emcoMethods : EMCOMethods {
        action call_is_ready {
            out ready : Boolean;
            perform pp_is_ready_EMCOMthd.operation {
                out ready = call_is_ready.ready;
            }
        }
        port pp_is_ready_EMCOMthd : EMCOMethod;
    }
}
"""

EMCO_WORKCELL_SOURCE = (ISA95_BASE_SOURCE + EMCO_LIBRARY_SOURCE
                        + EMCO_INSTANCE_SOURCE)
