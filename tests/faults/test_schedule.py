"""The extracted occurrence-hash contract (:mod:`repro.faults.schedule`).

``FaultPlan`` used to inline the seeded SHA-256 draw; the helper module
is now the single implementation, shared with the scenario engine. The
pinned vectors below were captured from the *pre-refactor* inline code,
so any drift in the token format (separator, field order, byte count)
fails loudly here — and would silently reshuffle every seeded fault
schedule and simulation scenario.
"""

import pytest

from repro.faults import (FaultPlan, FaultSpec, min_fraction_occurrence,
                          occurrence_fraction, occurrence_schedule,
                          spec_schedule)

#: Captured from FaultPlan(seed=7, ...).decide(...) before the refactor.
PINNED_CACHE_GET_CORRUPT_03 = [
    False, False, False, True, True, False, True, False, False, False,
    True, False, False, False, True, False, True, True, False, False]
PINNED_WORKER_CRASH_05 = [
    False, False, False, False, False, True, False, True, True, False,
    False, True, True, True, True, True, True, True, True, False]
#: round(occurrence_fraction(7, "cache.get", "corrupt", n), 6) for n<8,
#: captured from the pre-refactor inline hash.
PINNED_FRACTIONS = [0.749628, 0.500317, 0.640735, 0.062979,
                    0.016009, 0.411854, 0.047819, 0.618526]


class TestPinnedContract:
    def test_fraction_vector_unchanged(self):
        observed = [round(occurrence_fraction(7, "cache.get", "corrupt", n), 6)
                    for n in range(8)]
        assert observed == PINNED_FRACTIONS

    def test_fault_plan_firing_pattern_unchanged(self):
        specs = (FaultSpec("cache.get", "corrupt", probability=0.3),
                 FaultSpec("parallel.worker", "crash", probability=0.5))
        plan = FaultPlan(seed=7, specs=specs)
        fired = [plan.decide("cache.get") is not None for _ in range(20)]
        assert fired == PINNED_CACHE_GET_CORRUPT_03
        plan = FaultPlan(seed=7, specs=specs)
        fired = [plan.decide("parallel.worker") is not None
                 for _ in range(20)]
        assert fired == PINNED_WORKER_CRASH_05

    def test_plan_fires_matches_helper(self):
        spec = FaultSpec("some.site", "io-error", probability=0.4)
        plan = FaultPlan(seed=13, specs=(spec,))
        for occurrence in range(50):
            expected = occurrence_fraction(
                13, "some.site", "io-error", occurrence) < 0.4
            assert plan._fires(spec, occurrence) is expected


class TestScheduleHelpers:
    def test_schedule_matches_live_plan_decisions(self):
        spec = FaultSpec("sim.slowdown", "latency", probability=0.35)
        plan = FaultPlan(seed=42, specs=(spec,))
        schedule = spec_schedule(plan, spec, opportunities=30)
        live = [n for n in range(30)
                if plan.decide("sim.slowdown") is not None]
        assert schedule == live

    def test_schedule_is_pure(self):
        spec = FaultSpec("sim.outage", "unavailable", probability=0.5)
        plan = FaultPlan(seed=3, specs=(spec,))
        first = spec_schedule(plan, spec, opportunities=16)
        # consuming the live counters must not change the pure schedule
        for _ in range(10):
            plan.decide("sim.outage")
        assert spec_schedule(plan, spec, opportunities=16) == first

    def test_max_injections_caps_schedule(self):
        spec = FaultSpec("site", "crash", probability=1.0,
                         max_injections=3)
        plan = FaultPlan(seed=0, specs=(spec,))
        assert spec_schedule(plan, spec, opportunities=10) == [0, 1, 2]

    def test_probability_bounds(self):
        assert occurrence_schedule(1, "s", "crash", opportunities=20,
                                   probability=0.0) == []
        assert occurrence_schedule(1, "s", "crash", opportunities=20,
                                   probability=1.0) == list(range(20))
        with pytest.raises(ValueError):
            occurrence_schedule(1, "s", "crash", opportunities=5,
                                probability=1.5)
        with pytest.raises(ValueError):
            occurrence_schedule(1, "s", "crash", opportunities=-1,
                                probability=0.5)

    def test_min_fraction_occurrence_is_argmin(self):
        fractions = [occurrence_fraction(9, "pick", "latency", n)
                     for n in range(12)]
        winner = min_fraction_occurrence(9, "pick", "latency",
                                         opportunities=12)
        assert fractions[winner] == min(fractions)
        with pytest.raises(ValueError):
            min_fraction_occurrence(9, "pick", "latency", opportunities=0)

    def test_seed_site_kind_all_separate_streams(self):
        base = [occurrence_fraction(1, "a", "crash", n) for n in range(8)]
        assert [occurrence_fraction(2, "a", "crash", n)
                for n in range(8)] != base
        assert [occurrence_fraction(1, "b", "crash", n)
                for n in range(8)] != base
        assert [occurrence_fraction(1, "a", "io-error", n)
                for n in range(8)] != base
