"""Fault-plan determinism, activation scoping and site primitives."""

import pickle

import pytest

from repro.faults import (CORRUPT_PREFIX, FaultInjected, FaultPlan,
                          FaultSpec, InjectedCrash, InjectedIOError,
                          InjectedUnavailable, active_plan, corrupt_at,
                          corrupt_bytes, fault_point, install_plan,
                          uninstall_plan)
from repro.obs import METRICS


@pytest.fixture(autouse=True)
def _clean_global_plan():
    METRICS.reset()
    yield
    uninstall_plan()


def _schedule(plan, site, kinds=None, n=40):
    return [spec.kind if spec else None
            for spec in (plan.decide(site, kinds=kinds)
                         for _ in range(n))]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        specs = (FaultSpec("cache.get", "corrupt", probability=0.3),
                 FaultSpec("cache.get", "io-error", probability=0.1))
        first = _schedule(FaultPlan(seed=7, specs=specs), "cache.get")
        second = _schedule(FaultPlan(seed=7, specs=specs), "cache.get")
        assert first == second
        assert any(first)  # 0.3+0.1 over 40 draws: some must fire

    def test_different_seeds_differ(self):
        spec = (FaultSpec("site", "crash", probability=0.5),)
        schedules = {tuple(_schedule(FaultPlan(seed=s, specs=spec), "site"))
                     for s in range(4)}
        assert len(schedules) > 1

    def test_skipped_kinds_still_advance_occurrences(self):
        # a corrupt-only decide() must not shift the io-error stream
        specs = (FaultSpec("site", "io-error", probability=0.5),
                 FaultSpec("site", "corrupt", probability=0.5))
        plain = FaultPlan(seed=3, specs=specs)
        reference = _schedule(plain, "site", kinds=("io-error",))
        interleaved = FaultPlan(seed=3, specs=specs)
        observed = []
        for _ in range(40):
            interleaved.decide("site", kinds=("corrupt",))
            spec = interleaved.decide("site", kinds=("io-error",))
            observed.append(spec.kind if spec else None)
        assert observed == reference

    def test_probability_bounds(self):
        always = FaultPlan(specs=(FaultSpec("s", "crash", probability=1.0),))
        never = FaultPlan(specs=(FaultSpec("s", "crash", probability=0.0),))
        assert all(_schedule(always, "s", n=10))
        assert not any(_schedule(never, "s", n=10))

    def test_max_injections_caps_hits(self):
        plan = FaultPlan(specs=(
            FaultSpec("s", "io-error", probability=1.0, max_injections=2),))
        kinds = _schedule(plan, "s", n=10)
        assert kinds == ["io-error", "io-error"] + [None] * 8
        assert plan.injection_count == 2
        assert plan.injections() == {"s:io-error": 2}


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("site", "meteor-strike")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("site", "crash", probability=1.5)


class TestSerialization:
    def test_pickle_preserves_schedule_resets_counters(self):
        plan = FaultPlan(seed=11, specs=(
            FaultSpec("s", "crash", probability=0.5),))
        reference = _schedule(FaultPlan(seed=11, specs=plan.specs), "s")
        _schedule(plan, "s", n=5)  # advance before pickling
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed and clone.specs == plan.specs
        assert clone.injection_count == 0
        assert _schedule(clone, "s") == reference

    def test_from_string(self):
        plan = FaultPlan.from_string(
            "cache.get:corrupt:0.2, parallel.worker:crash:0.5:3", seed=9)
        assert plan.seed == 9
        assert plan.specs == (
            FaultSpec("cache.get", "corrupt", probability=0.2),
            FaultSpec("parallel.worker", "crash", probability=0.5,
                      max_injections=3))

    def test_from_string_rejects_bare_site(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.from_string("cache.get")


class TestActivation:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        fault_point("anywhere")  # must not raise
        assert corrupt_at("anywhere", b"data") == b"data"

    def test_activated_scopes_to_context(self):
        plan = FaultPlan(seed=1)
        with plan.activated():
            assert active_plan() is plan
        assert active_plan() is None

    def test_local_plan_wins_over_global(self):
        global_plan = FaultPlan(seed=1)
        local_plan = FaultPlan(seed=2)
        install_plan(global_plan)
        assert active_plan() is global_plan
        with local_plan.activated():
            assert active_plan() is local_plan
        assert active_plan() is global_plan
        uninstall_plan()
        assert active_plan() is None


class TestSitePrimitives:
    def _plan(self, kind, **kwargs):
        return FaultPlan(specs=(FaultSpec("site", kind, **kwargs),))

    def test_io_error_site(self):
        with self._plan("io-error").activated():
            with pytest.raises(InjectedIOError) as info:
                fault_point("site")
        assert isinstance(info.value, OSError)
        assert info.value.retriable and info.value.site == "site"

    def test_crash_site(self):
        with self._plan("crash").activated():
            with pytest.raises(InjectedCrash):
                fault_point("site")

    def test_unavailable_carries_retry_after(self):
        with self._plan("unavailable", retry_after=0.25).activated():
            with pytest.raises(InjectedUnavailable) as info:
                fault_point("site")
        assert info.value.retry_after == 0.25
        assert isinstance(info.value, FaultInjected)

    def test_fault_point_ignores_corrupt_specs(self):
        with self._plan("corrupt").activated():
            fault_point("site")  # corrupt needs a payload: no raise

    def test_corrupt_at_breaks_every_codec(self):
        data = corrupt_bytes(b'{"a": 1}')
        assert data.startswith(CORRUPT_PREFIX)
        with pytest.raises(UnicodeDecodeError):
            data.decode("utf-8")
        with pytest.raises(pickle.UnpicklingError):
            pickle.loads(data)

    def test_corrupt_at_fires_under_plan(self):
        with self._plan("corrupt").activated():
            assert corrupt_at("site", b"payload") != b"payload"

    def test_metrics_count_injections(self):
        with self._plan("io-error").activated():
            with pytest.raises(InjectedIOError):
                fault_point("site")
        snap = METRICS.snapshot()
        assert snap.get("faults.injected") == 1
        assert snap.get("faults.injected.io-error") == 1
