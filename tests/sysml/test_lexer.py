"""Unit tests for the SysML v2 lexer."""

import pytest

from repro.sysml.errors import LexerError
from repro.sysml.lexer import tokenize
from repro.sysml.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("emco") == [TokenKind.IDENT]

    def test_identifier_with_underscores_and_digits(self):
        assert values("pp_actual_X_EMCOVar2") == ["pp_actual_X_EMCOVar2"]

    def test_keywords_lex_as_identifiers(self):
        # keywords are contextual in SysML v2
        assert kinds("part def") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_punctuation(self):
        assert kinds("{ } [ ] ( ) ; , . = * ~") == [
            TokenKind.LBRACE, TokenKind.RBRACE, TokenKind.LBRACKET,
            TokenKind.RBRACKET, TokenKind.LPAREN, TokenKind.RPAREN,
            TokenKind.SEMI, TokenKind.COMMA, TokenKind.DOT,
            TokenKind.EQUALS, TokenKind.STAR, TokenKind.TILDE,
        ]

    def test_specializes_operator(self):
        assert kinds(":>") == [TokenKind.SPECIALIZES]

    def test_redefines_operator(self):
        assert kinds(":>>") == [TokenKind.REDEFINES]

    def test_double_colon(self):
        assert kinds("A::B") == [TokenKind.IDENT, TokenKind.DOUBLE_COLON,
                                 TokenKind.IDENT]

    def test_single_colon(self):
        assert kinds("x : T") == [TokenKind.IDENT, TokenKind.COLON,
                                  TokenKind.IDENT]

    def test_redefines_binds_tighter_than_specializes(self):
        # ':>>' must not lex as ':>' '>'
        assert kinds(":>> ip") == [TokenKind.REDEFINES, TokenKind.IDENT]


class TestLiterals:
    def test_double_quoted_string(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "hello world"

    def test_single_quoted_string(self):
        tokens = tokenize("'10.197.12.11'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "10.197.12.11"

    def test_string_escapes(self):
        tokens = tokenize(r"'a\'b\nc'")
        assert tokens[0].value == "a'b\nc"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_string_may_not_span_lines(self):
        with pytest.raises(LexerError):
            tokenize("'line\nbreak'")

    def test_integer(self):
        tokens = tokenize("5557")
        assert tokens[0].kind is TokenKind.INTEGER
        assert tokens[0].value == "5557"

    def test_real(self):
        tokens = tokenize("3.19")
        assert tokens[0].kind is TokenKind.REAL
        assert tokens[0].value == "3.19"

    def test_real_with_exponent(self):
        tokens = tokenize("1.5e-3")
        assert tokens[0].kind is TokenKind.REAL

    def test_integer_with_exponent_is_real(self):
        tokens = tokenize("2e6")
        assert tokens[0].kind is TokenKind.REAL

    def test_integer_followed_by_dotdot_is_not_real(self):
        # multiplicity ranges like [1..4] must not eat "1." as a real
        assert kinds("1..4") == [TokenKind.INTEGER, TokenKind.DOT,
                                 TokenKind.DOT, TokenKind.INTEGER]


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* comment */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_multiline_block_comment(self):
        assert kinds("a /* multi\nline */ b") == [TokenKind.IDENT,
                                                  TokenKind.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never ends")

    def test_doc_comment_preserved(self):
        tokens = tokenize("doc /* the documentation */")
        assert tokens[0].value == "doc"
        assert tokens[1].kind is TokenKind.DOC_COMMENT
        assert tokens[1].value == "the documentation"

    def test_plain_block_comment_not_attached_to_non_doc(self):
        tokens = tokenize("part /* note */ x")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.IDENT,
                                                 TokenKind.IDENT]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        tokens = tokenize("x", filename="factory.sysml")
        assert tokens[0].location.filename == "factory.sysml"

    def test_error_reports_location(self):
        with pytest.raises(LexerError) as exc:
            tokenize("ok\n  @bad")
        assert exc.value.location.line == 2

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("part €")


class TestRealisticSnippets:
    def test_paper_code2_header(self):
        text = "part def EMCODriver :> MachineDriver {"
        assert values(text) == ["part", "def", "EMCODriver", ":>",
                                "MachineDriver", "{"]

    def test_paper_code5_redefinition(self):
        text = ":>> ip = '10.197.12.11';"
        tokens = tokenize(text)
        assert tokens[0].kind is TokenKind.REDEFINES
        assert tokens[2].kind is TokenKind.EQUALS
        assert tokens[3].value == "10.197.12.11"

    def test_conjugated_port(self):
        text = "port p : ~EMCOVar;"
        assert TokenKind.TILDE in kinds(text)

    def test_multiplicity_star(self):
        text = "ref part Machine [*];"
        assert kinds(text)[-4:-1] == [TokenKind.LBRACKET, TokenKind.STAR,
                                      TokenKind.RBRACKET]
