"""Tests for the model well-formedness rules."""

import pytest

from repro.sysml import load_model, validate_model
from repro.sysml.errors import ValidationError


def rules_of(report):
    return {d.rule for d in report}


def errors_of(report):
    return {d.rule for d in report.errors}


class TestAbstractInstantiation:
    def test_direct_instantiation_of_abstract_def_rejected(self):
        model = load_model("""
            abstract part def Driver;
            part d : Driver;
        """)
        assert "abstract-instantiation" in errors_of(validate_model(model))

    def test_specialized_instantiation_accepted(self):
        model = load_model("""
            abstract part def Driver;
            part def EMCODriver :> Driver;
            part d : EMCODriver;
        """)
        assert "abstract-instantiation" not in rules_of(validate_model(model))

    def test_ref_to_abstract_def_accepted(self):
        # workcells reference abstract Machine[*] in the paper's Code 1
        model = load_model("""
            abstract part def Machine;
            part def Workcell { ref part machines : Machine [*]; }
            part w : Workcell;
        """)
        assert "abstract-instantiation" not in errors_of(validate_model(model))

    def test_paper_example_validates_cleanly(self, emco_model):
        report = validate_model(emco_model)
        assert report.ok, str(report)


class TestSpecializationRules:
    def test_cycle_detected(self):
        model = load_model("""
            part def A :> B;
            part def B :> A;
        """)
        assert "cyclic-specialization" in errors_of(validate_model(model))

    def test_self_cycle_detected(self):
        model = load_model("part def A :> A;")
        assert "cyclic-specialization" in errors_of(validate_model(model))

    def test_cross_kind_specialization_rejected(self):
        model = load_model("""
            port def P;
            part def X :> P;
        """)
        assert "specialization-kind" in errors_of(validate_model(model))

    def test_same_kind_specialization_ok(self):
        model = load_model("""
            abstract part def A;
            part def B :> A;
        """)
        assert "specialization-kind" not in rules_of(validate_model(model))


class TestRedefinitionRules:
    def test_non_conforming_redefinition_type_rejected(self):
        model = load_model("""
            part def P { attribute x : Real; }
            part p : P {
                attribute x :>> x : String;
            }
        """)
        assert "redefinition-type" in errors_of(validate_model(model))

    def test_conforming_redefinition_accepted(self):
        # Integer specializes Real in the scalar library
        model = load_model("""
            part def P { attribute x : Real; }
            part p : P {
                attribute x :>> x : Integer;
            }
        """)
        assert "redefinition-type" not in rules_of(validate_model(model))

    def test_untyped_redefinition_not_flagged(self):
        model = load_model("""
            part def P { attribute x : Real; }
            part p : P { :>> x = 1.5; }
        """)
        assert "redefinition-type" not in rules_of(validate_model(model))


class TestConjugationRules:
    def test_conjugating_part_def_rejected(self):
        model = load_model("""
            part def NotAPort;
            part def M { port p : ~NotAPort; }
        """)
        assert "conjugation-target" in errors_of(validate_model(model))

    def test_conjugating_port_def_ok(self):
        model = load_model("""
            port def Var { in attribute value : Real; }
            part def M { port p : ~Var; }
        """)
        assert "conjugation-target" not in rules_of(validate_model(model))


class TestMultiplicityRules:
    def test_inverted_bounds_rejected(self):
        model = load_model("""
            part def W;
            part def C { part w : W [3..1]; }
        """)
        assert "multiplicity-bounds" in errors_of(validate_model(model))

    def test_star_upper_ok(self):
        model = load_model("""
            part def W;
            part def C { ref part w : W [*]; }
        """)
        assert "multiplicity-bounds" not in rules_of(validate_model(model))


class TestConnectorRules:
    GOOD = """
        port def Var { in attribute value : Real; }
        part def Machine { port data : ~Var; }
        part def Driver { port vars : Var; }
        part system {
            part m : Machine;
            part d : Driver;
            connect m.data to d.vars;
        }
    """

    def test_matching_port_types_ok(self):
        model = load_model(self.GOOD)
        report = validate_model(model)
        assert "connector-port-type" not in rules_of(report)

    def test_mismatched_port_types_rejected(self):
        model = load_model("""
            port def VarA { in attribute value : Real; }
            port def VarB { in attribute value : Real; }
            part def Machine { port data : ~VarA; }
            part def Driver { port vars : VarB; }
            part system {
                part m : Machine;
                part d : Driver;
                connect m.data to d.vars;
            }
        """)
        assert "connector-port-type" in errors_of(validate_model(model))

    def test_same_conjugation_warned(self):
        model = load_model("""
            port def Var { in attribute value : Real; }
            part def Machine { port data : Var; }
            part def Driver { port vars : Var; }
            part system {
                part m : Machine;
                part d : Driver;
                connect m.data to d.vars;
            }
        """)
        report = validate_model(model)
        assert "connector-conjugation" in {d.rule for d in report.warnings}

    def test_specialized_port_types_conform(self):
        model = load_model("""
            port def Var { in attribute value : Real; }
            port def FastVar :> Var;
            part def Machine { port data : ~FastVar; }
            part def Driver { port vars : Var; }
            part system {
                part m : Machine;
                part d : Driver;
                connect m.data to d.vars;
            }
        """)
        assert "connector-port-type" not in errors_of(validate_model(model))


class TestBindingRules:
    def test_cross_kind_bind_rejected(self):
        model = load_model("""
            part def Inner;
            part def M {
                attribute a : Real;
                part q : Inner;
                bind q = a;
            }
        """)
        assert "binding-kind" in errors_of(validate_model(model))

    def test_attribute_to_attribute_bind_ok(self, emco_model):
        report = validate_model(emco_model)
        assert "binding-kind" not in rules_of(report)


class TestStructuralRules:
    def test_duplicate_members_rejected(self):
        model = load_model("""
            part def M {
                attribute x : Real;
                attribute x : String;
            }
        """)
        assert "duplicate-member" in errors_of(validate_model(model))

    def test_empty_definition_warned(self):
        model = load_model("part def Stub;")
        report = validate_model(model)
        assert "empty-definition" in {d.rule for d in report.warnings}

    def test_abstract_empty_definition_not_warned(self):
        model = load_model("abstract part def Base;")
        report = validate_model(model)
        assert "empty-definition" not in rules_of(report)

    def test_untyped_ref_warned(self):
        model = load_model("part def M { ref part anything; }")
        report = validate_model(model)
        assert "dangling-ref" in {d.rule for d in report.warnings}


class TestDiagnosticReport:
    def test_raise_if_errors(self):
        model = load_model("""
            abstract part def Driver;
            part d : Driver;
        """)
        report = validate_model(model)
        with pytest.raises(ValidationError):
            report.raise_if_errors()

    def test_ok_report_does_not_raise(self, emco_model):
        validate_model(emco_model).raise_if_errors()

    def test_diagnostics_carry_element_names(self):
        model = load_model("""
            abstract part def Driver;
            part d : Driver;
        """)
        report = validate_model(model)
        diag = next(d for d in report.errors
                    if d.rule == "abstract-instantiation")
        assert diag.element == "d"

    def test_report_string_rendering(self):
        model = load_model("part def Stub;")
        text = str(validate_model(model))
        assert "empty-definition" in text
