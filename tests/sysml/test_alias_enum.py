"""Alias and enumeration-definition tests."""

import pytest

from repro.sysml import (EnumerationDefinition, ResolutionError, load_model,
                         model_from_dict, model_to_dict, print_model,
                         validate_model)


class TestAlias:
    def test_alias_resolves_as_type(self):
        model = load_model("""
            package Lib { part def Machine { attribute a : Real; } }
            alias M for Lib::Machine;
            part m : M;
        """)
        usage = model.find("m")
        assert usage.typ.qualified_name == "Lib::Machine"

    def test_alias_inside_package(self):
        model = load_model("""
            package Lib { part def Machine; }
            package App {
                alias M for Lib::Machine;
                part m : M;
            }
        """)
        assert model.find("App::m").typ.qualified_name == "Lib::Machine"

    def test_alias_to_alias_flattens(self):
        model = load_model("""
            part def Thing;
            alias A for Thing;
            alias B for A;
            part t : B;
        """)
        assert model.find("t").typ.name == "Thing"

    def test_unresolvable_alias_raises(self):
        with pytest.raises(ResolutionError, match="alias target"):
            load_model("alias X for Missing::Thing;")

    def test_alias_printed_and_reparsed(self):
        model = load_model("""
            part def Thing;
            alias T for Thing;
            part x : T;
        """)
        printed = print_model(model)
        assert "alias T for Thing;" in printed
        reparsed = load_model(printed, include_stdlib=False)
        assert reparsed.find("x").typ.name == "Thing"

    def test_alias_interchange_roundtrip(self):
        model = load_model("""
            part def Thing;
            alias T for Thing;
        """)
        rebuilt = model_from_dict(model_to_dict(model))
        assert model_to_dict(rebuilt) == model_to_dict(model)


class TestEnumDefinition:
    SOURCE = """
        enum def MachineState {
            doc /* operational states */
            idle;
            running;
            error;
        }
        part def M { attribute state : MachineState = idle; }
    """

    def test_enum_parses_with_literals(self):
        model = load_model(self.SOURCE)
        enum = model.find("MachineState")
        assert isinstance(enum, EnumerationDefinition)
        assert [l.name for l in enum.literals] == ["idle", "running",
                                                   "error"]
        assert enum.documentation == "operational states"

    def test_literal_lookup(self):
        model = load_model(self.SOURCE)
        enum = model.find("MachineState")
        assert enum.literal("running") is not None
        assert enum.literal("flying") is None

    def test_valid_literal_assignment_passes(self):
        model = load_model(self.SOURCE + """
            part m : M { :>> state = running; }
        """)
        report = validate_model(model)
        assert "enum-value" not in {d.rule for d in report.errors}

    def test_invalid_literal_rejected(self):
        model = load_model(self.SOURCE + """
            part m : M { :>> state = flying; }
        """)
        report = validate_model(model)
        errors = [d for d in report.errors if d.rule == "enum-value"]
        assert errors
        assert "flying" in errors[0].message

    def test_non_literal_value_rejected(self):
        model = load_model(self.SOURCE + """
            part m : M { :>> state = 'idle'; }
        """)
        report = validate_model(model)
        assert any(d.rule == "enum-value" for d in report.errors)

    def test_enum_printed_and_reparsed(self):
        model = load_model(self.SOURCE)
        printed = print_model(model)
        assert "enum def MachineState {" in printed
        assert "    idle;" in printed
        reparsed = load_model(printed, include_stdlib=False)
        assert [l.name for l in reparsed.find("MachineState").literals] \
            == ["idle", "running", "error"]

    def test_enum_interchange_roundtrip(self):
        model = load_model(self.SOURCE)
        rebuilt = model_from_dict(model_to_dict(model))
        enum = rebuilt.find("MachineState")
        assert [l.name for l in enum.literals] == ["idle", "running",
                                                   "error"]

    def test_enum_through_alias(self):
        model = load_model(self.SOURCE + """
            alias State for MachineState;
            part def N { attribute s : State = error; }
        """)
        assert validate_model(model).ok
        bad = load_model(self.SOURCE + """
            alias State for MachineState;
            part def N { attribute s : State = nope; }
        """)
        assert any(d.rule == "enum-value"
                   for d in validate_model(bad).errors)
