"""Differential tests: streaming lexer vs the reference scanner.

The streaming regex lexer (`repro.sysml.lexer`) must agree with the
character-at-a-time reference (`repro.sysml.lexer_reference`)
token-for-token — kinds, values, source locations — and raise the same
errors with the same messages and positions. These tests are the
executable contract that lets the hot path evolve without semantic
drift; the scaling bench separately asserts the speedup.
"""

import pytest

from repro.icelab.model_gen import icelab_sources
from repro.sysml.errors import LexerError
from repro.sysml.lexer import Lexer, iter_tokens, tokenize
from repro.sysml.lexer_reference import tokenize_reference
from repro.sysml.tokens import TokenKind


def assert_agrees(text, filename="<model>"):
    """Both lexers produce identical token streams (or identical errors)."""
    try:
        expected = tokenize_reference(text, filename)
    except LexerError as error:
        with pytest.raises(LexerError) as caught:
            tokenize(text, filename)
        assert str(caught.value) == str(error)
        return None
    actual = tokenize(text, filename)
    assert [(t.kind, t.value, t.location) for t in actual] == \
        [(t.kind, t.value, t.location) for t in expected]
    return actual


class TestCorpusAgreement:
    def test_full_icelab_corpus(self):
        for index, source in enumerate(icelab_sources()):
            assert_agrees(source, f"<icelab{index}>")

    def test_streaming_equals_list_tokenization(self):
        source = "\n".join(icelab_sources())
        assert list(iter_tokens(source)) == tokenize(source)

    def test_streaming_is_lazy(self):
        """The stream yields before the input is fully scanned."""
        stream = iter_tokens("part def P;" * 100_000)
        first = next(stream)
        assert first.kind is TokenKind.IDENT and first.value == "part"


class TestLineEndings:
    def test_crlf_line_endings(self):
        tokens = assert_agrees("part def A;\r\npart def B;\r\n")
        # CRLF counts as one line break; locations match the reference
        assert tokens[4].value == "part"
        assert tokens[4].location.line == 2
        assert tokens[4].location.column == 1

    def test_mixed_line_endings(self):
        assert_agrees("part def A;\r\npart def B;\npart def C;\rpart def D;")

    def test_lone_carriage_returns_are_whitespace_not_newlines(self):
        tokens = assert_agrees("a\rb")
        assert tokens[1].location.line == 1

    def test_crlf_inside_block_comment(self):
        assert_agrees("/* a\r\n b */ part def P;")

    def test_crlf_inside_doc_comment_body(self):
        tokens = assert_agrees("doc /* first\r\nsecond */")
        doc = [t for t in tokens if t.kind is TokenKind.DOC_COMMENT]
        assert len(doc) == 1


class TestScaleInputs:
    def test_multi_megabyte_single_package(self):
        # one package source comfortably past a megabyte
        body = "".join(
            f"    part m{i} : M {{ attribute v{i} : Real = {i}.5; }}\n"
            for i in range(12_000))
        source = f"package Big {{\n{body}}}\n"
        assert len(source) > 600_000
        tokens = assert_agrees(source)
        assert tokens[-1].kind is TokenKind.EOF
        assert tokens[-1].location.line == source.count("\n") + 1

    def test_pathological_line_comment_runs(self):
        source = "// filler comment line\n" * 20_000 + "part def P;\n"
        tokens = assert_agrees(source)
        assert tokens[0].location.line == 20_001

    def test_pathological_block_comment_run(self):
        source = "/*" + ("*" * 50_000) + "*/ part def P;"
        assert_agrees(source)

    def test_alternating_doc_and_plain_comments(self):
        chunk = "doc /* documented */ /* ignored */ // eol\n"
        tokens = assert_agrees(chunk * 2_000)
        docs = [t for t in tokens if t.kind is TokenKind.DOC_COMMENT]
        assert len(docs) == 2_000

    def test_long_quoted_names_and_strings(self):
        source = ("part '" + "x " * 5_000 + "end' : T;\n"
                  + 'attribute s : String = "' + "y " * 5_000 + '";')
        assert_agrees(source)


class TestErrorAgreement:
    CASES = [
        "'open", '"open', "'line\nbreak'", '"line\nbreak"',
        "/* never closed", "part €", "1.5e", "1.5e+", "²abc", "12²3",
        "@", "part def P; 'x", "a\n€", "  \r\n  ∑",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_same_error_message_and_location(self, source):
        assert_agrees(source)

    def test_error_location_after_crlf_lines(self):
        with pytest.raises(LexerError) as caught:
            tokenize("part def A;\r\npart €")
        assert "<model>:2:6" in str(caught.value)


class TestTokenInterning:
    def test_identifier_values_are_interned(self):
        a, b = tokenize("sameName sameName")[:2]
        assert a.value is b.value

    def test_interning_across_lexer_instances(self):
        (a,) = [t for t in Lexer("shared").tokens()
                if t.kind is TokenKind.IDENT]
        (b,) = [t for t in Lexer("shared").tokens()
                if t.kind is TokenKind.IDENT]
        assert a.value is b.value


class TestParallelParseDeterminism:
    """The streaming front end must stay byte-deterministic under the
    process/thread-parallel per-package parse (`load_model(jobs=...)`)."""

    @staticmethod
    def _fingerprint(model):
        from repro.sysml import print_element
        return "".join(print_element(e) for e in model.owned_elements)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_modes_match_serial(self, mode):
        from repro.sysml import load_model
        sources = icelab_sources()
        serial = load_model(*sources)
        parallel = load_model(*sources, jobs=4, parse_mode=mode)
        assert self._fingerprint(parallel) == self._fingerprint(serial)
        assert parallel.content_fingerprint == serial.content_fingerprint
