"""Dependency-graph and fingerprint unit properties.

The incremental engine's correctness rests on a few invariants of
:mod:`repro.sysml.depgraph`:

* deep fingerprints are syntactic — comments and whitespace never
  change them, any token of substance does;
* ``producer_closure`` follows target edges transitively, so a machine
  usage reaches its definition's supertypes;
* ``node_dependency_fingerprints`` moves exactly when the node's own
  subtree or something its resolution depends on changes.
"""

from repro.sysml import load_model
from repro.sysml.depgraph import (NodeKey, anchor_key, deep_fingerprint,
                                  find_by_path, node_dependency_fingerprints,
                                  node_path, subtree_anchor_keys)

LIBRARY = """
package Lib {
    abstract part def Gadget {
        attribute serial : String;
    }
    part def Widget :> Gadget {
        attribute size : Integer;
    }
}
"""

PLANT = """
package Plant {
    import Lib::*;
    part w1 : Widget {
        attribute size : Integer = 3;
    }
    part w2 : Widget {
        attribute size : Integer = 5;
    }
}
"""


def _load(*sources):
    return load_model(*sources, record_deps=True)


class TestNodeKey:
    def test_is_under_matches_prefix_segments(self):
        key = NodeKey("PartUsage", "Plant::w1::size")
        assert key.is_under("Plant::w1")
        assert key.is_under("Plant::w1::size")
        assert not key.is_under("Plant::w2")
        # segment boundary, not a raw string prefix
        assert not key.is_under("Plant::w")

    def test_node_path_roundtrips_through_find_by_path(self):
        model = _load(LIBRARY, PLANT)
        w1 = find_by_path(model, "Plant::w1")
        assert w1 is not None
        assert node_path(w1) == "Plant::w1"
        assert find_by_path(model, node_path(w1)) is w1


class TestDeepFingerprint:
    def test_comment_and_whitespace_insensitive(self):
        base = _load(LIBRARY, PLANT)
        commented = PLANT.replace(
            "part w1 : Widget {",
            "// a comment\n    part w1 : Widget {")
        other = _load(LIBRARY, commented)
        assert (deep_fingerprint(find_by_path(base, "Plant::w1"))
                == deep_fingerprint(find_by_path(other, "Plant::w1")))

    def test_value_change_moves_the_hash(self):
        base = _load(LIBRARY, PLANT)
        edited = _load(LIBRARY, PLANT.replace("= 3", "= 4"))
        assert (deep_fingerprint(find_by_path(base, "Plant::w1"))
                != deep_fingerprint(find_by_path(edited, "Plant::w1")))

    def test_sibling_edit_does_not_leak(self):
        base = _load(LIBRARY, PLANT)
        edited = _load(LIBRARY, PLANT.replace("= 5", "= 6"))
        assert (deep_fingerprint(find_by_path(base, "Plant::w1"))
                == deep_fingerprint(find_by_path(edited, "Plant::w1")))


class TestProducerClosure:
    def test_usage_reaches_definition_supertype(self):
        model = _load(LIBRARY, PLANT)
        w1 = find_by_path(model, "Plant::w1")
        closure = model.dep_graph.producer_closure(subtree_anchor_keys(w1))
        paths = {key.path for key in closure}
        assert "Lib::Widget" in paths
        # transitively through Widget's specialization edge
        assert "Lib::Gadget" in paths

    def test_closure_excludes_unreferenced_siblings(self):
        model = _load(LIBRARY, PLANT)
        w1 = find_by_path(model, "Plant::w1")
        closure = model.dep_graph.producer_closure(subtree_anchor_keys(w1))
        assert not any(key.is_under("Plant::w2") for key in closure)


class TestNodeDependencyFingerprints:
    def _keys(self, model, path="Plant::w1"):
        return node_dependency_fingerprints(
            model, model.dep_graph, model.node_index, path)

    def test_stable_for_identical_sources(self):
        assert (self._keys(_load(LIBRARY, PLANT))
                == self._keys(_load(LIBRARY, PLANT)))

    def test_own_edit_moves_node_fp_only(self):
        base = self._keys(_load(LIBRARY, PLANT))
        edited = self._keys(_load(LIBRARY, PLANT.replace("= 3", "= 4")))
        assert edited[0] != base[0]
        assert edited[1] == base[1]

    def test_dependency_edit_moves_deps_fp(self):
        base = self._keys(_load(LIBRARY, PLANT))
        deeper = LIBRARY.replace("attribute serial : String;",
                                 "attribute serial : String;\n"
                                 "        attribute batch : String;")
        edited = self._keys(_load(deeper, PLANT))
        assert edited[0] == base[0]
        assert edited[1] != base[1]

    def test_sibling_edit_moves_neither(self):
        base = self._keys(_load(LIBRARY, PLANT))
        edited = self._keys(_load(LIBRARY, PLANT.replace("= 5", "= 6")))
        assert edited == base

    def test_vanished_path_returns_none(self):
        model = _load(LIBRARY, PLANT)
        assert node_dependency_fingerprints(
            model, model.dep_graph, model.node_index, "Plant::nope") is None


class TestSubtreeAnchorKeys:
    def test_contains_root_and_named_descendants(self):
        model = _load(LIBRARY, PLANT)
        w1 = find_by_path(model, "Plant::w1")
        keys = subtree_anchor_keys(w1)
        assert anchor_key(w1) in keys
        assert all(key.path.startswith("Plant::w1") for key in keys)
