"""Regression tests for printer/parser round-trip infidelities surfaced
by the conformance corpus generator (repro.testkit).

Each test pins one historical bug:

* negative numeric literals did not lex (`unexpected character '-'`);
* the printer emitted newline/tab string bodies verbatim, producing
  sources the lexer rejected (`unterminated string literal`);
* quoted *unrestricted names* (``'name with spaces'``) were rejected in
  every name position, and the printer emitted non-identifier names
  bare, so printed models failed to re-parse.
"""

import pytest

from repro.sysml import load_model, print_element
from repro.sysml.errors import ParseError
from repro.sysml.interchange import element_to_dict
from repro.sysml.printer import format_name

pytestmark = []


def user_dicts(model):
    return [element_to_dict(e) for e in model.owned_elements
            if not getattr(e, "is_library", False)]


def print_user(model):
    return "".join(print_element(e) for e in model.owned_elements
                   if not getattr(e, "is_library", False))


def roundtrip(source: str):
    """Parse, print, re-parse; require AST identity. Returns the text."""
    first = load_model(source)
    printed = print_user(first)
    second = load_model(printed)
    assert user_dicts(first) == user_dicts(second)
    assert print_user(second) == printed  # printing reached a fixpoint
    return printed


class TestNegativeLiterals:
    def test_negative_integer_value(self):
        model = load_model(
            "part def X { attribute a : ScalarValues::Integer = -42; }")
        definition = model.owned_elements[-1]
        attribute = definition.owned_elements[0]
        assert attribute.value.value == -42

    def test_negative_real_value(self):
        roundtrip(
            "part def X { attribute a : ScalarValues::Real = -2.5; }")

    def test_negative_redefinition_value(self):
        roundtrip("part def D { attribute offset : ScalarValues::Integer; }\n"
                  "part d : D { :>> offset = -7; }")

    def test_minus_requires_number(self):
        with pytest.raises(ParseError):
            load_model("part def X { attribute a = -; }")


class TestStringEscaping:
    @pytest.mark.parametrize("value", [
        "line1\nline2", "tab\tseparated", "back\\slash", "quo'te",
        "mixed\n\t\\'", "",
    ])
    def test_control_characters_roundtrip(self, value):
        from repro.sysml.ast_nodes import Literal, QualifiedName
        from repro.sysml.elements import (AttributeUsage, Model, Package)
        model = Model()
        package = Package("P")
        attribute = AttributeUsage("a")
        attribute.type_name = QualifiedName(["ScalarValues", "String"])
        attribute.value = Literal(value)
        package.add_owned(attribute)
        model.add_owned(package)
        printed = print_user(model)
        reparsed = load_model(printed)
        value_back = reparsed.owned_elements[-1].owned_elements[0].value
        assert value_back.value == value


class TestQuotedNames:
    def test_quoted_names_parse_everywhere(self):
        roundtrip("""
package 'My Pkg' {
    part def 'My Machine' {
        attribute 'Spindle Speed' : ScalarValues::Real = -1.5;
    }
    part 'm 1' : 'My Pkg'::'My Machine';
}
""")

    def test_quoted_name_in_feature_chain(self):
        roundtrip("""
part def T { attribute 'the value' : ScalarValues::Real; }
part a : T;
part b : T {
    bind 'the value' = a.'the value';
}
""")

    def test_keyword_as_quoted_name(self):
        printed = roundtrip("part def X { attribute 'part' : "
                            "ScalarValues::Real; }")
        assert "'part'" in printed

    def test_format_name_quotes_only_when_needed(self):
        assert format_name("plain_name2") == "plain_name2"
        assert format_name("µzelle") == "µzelle"  # unicode identifiers stay bare
        assert format_name("has space") == "'has space'"
        assert format_name("1leading") == "'1leading'"
        assert format_name("part") == "'part'"  # keyword collision
        assert format_name("apo'strophe") == r"'apo\'strophe'"
        assert format_name("") == "''"

    def test_quoted_name_with_escapes_roundtrips(self):
        name = "weird \\ 'name'"
        source = f"part def {format_name(name)};"
        model = load_model(source)
        assert model.owned_elements[-1].name == name
