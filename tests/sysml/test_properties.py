"""Property-based tests (hypothesis) for the SysML front end.

Strategy: generate random small semantic models programmatically, print
them to textual notation, re-parse, and require a fixpoint. This
exercises lexer, parser, printer and interchange together across a much
wider input space than the hand-written cases.
"""

import keyword
import string

from hypothesis import given, settings, strategies as st

from repro.sysml import (load_model, model_to_dict, print_model, tokenize)
from repro.sysml.ast_nodes import Literal, Multiplicity, QualifiedName
from repro.sysml.elements import (AttributeDefinition, AttributeUsage, Model,
                                  Package, PartDefinition, PartUsage,
                                  PortDefinition, PortUsage)
from repro.sysml.tokens import TokenKind

IDENT_ALPHABET = string.ascii_letters + "_"
IDENT_CONT = string.ascii_letters + string.digits + "_"

RESERVED = {
    "package", "part", "def", "abstract", "ref", "attribute", "port",
    "action", "interface", "connection", "connect", "bind", "perform",
    "import", "in", "out", "inout", "doc", "end", "to", "specializes",
    "redefines", "true", "false", "item",
}

identifiers = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(IDENT_ALPHABET),
    st.text(IDENT_CONT, max_size=8),
).filter(lambda s: s not in RESERVED and not keyword.iskeyword(s))

string_values = st.text(
    st.characters(blacklist_categories=("Cs", "Cc")), max_size=20)
scalar_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    string_values,
)


@st.composite
def random_models(draw):
    """A random package of part defs with attributes, ports and usages."""
    model = Model()
    package = Package(draw(identifiers))
    model.add_owned(package)
    used_names: set[str] = {package.name}

    def fresh_name():
        name = draw(identifiers.filter(lambda n: n not in used_names))
        used_names.add(name)
        return name

    port_def = PortDefinition(fresh_name())
    value_attr = AttributeUsage("value")
    value_attr.direction = "in"
    value_attr.type_name = QualifiedName(["ScalarValues", "Real"])
    port_def.add_owned(value_attr)
    package.add_owned(port_def)

    definition_names = []
    for _ in range(draw(st.integers(1, 3))):
        definition = PartDefinition(fresh_name())
        definition_names.append(definition.name)
        for _ in range(draw(st.integers(0, 3))):
            attribute = AttributeUsage(fresh_name())
            attribute.type_name = QualifiedName(["ScalarValues", draw(
                st.sampled_from(["Real", "Integer", "String", "Boolean"]))])
            definition.add_owned(attribute)
        if draw(st.booleans()):
            port = PortUsage(fresh_name())
            port.type_name = QualifiedName([package.name, port_def.name])
            port.conjugated = draw(st.booleans())
            definition.add_owned(port)
        package.add_owned(definition)

    for _ in range(draw(st.integers(0, 2))):
        usage = PartUsage(fresh_name())
        usage.type_name = QualifiedName(
            [package.name, draw(st.sampled_from(definition_names))])
        if draw(st.booleans()):
            usage.multiplicity = Multiplicity(
                lower=draw(st.integers(0, 3)),
                upper=draw(st.one_of(st.none(), st.integers(3, 9))))
        model.add_owned(usage)
    return model


def print_user_model(model):
    """Print only the non-library root elements of a model."""
    from repro.sysml import print_element
    parts = []
    for element in model.owned_elements:
        if getattr(element, "is_library", False):
            continue
        parts.append(print_element(element))
    return "".join(parts)


@settings(max_examples=60, deadline=None)
@given(random_models())
def test_print_parse_print_fixpoint(model):
    printed = print_user_model(model)
    reparsed = load_model(printed)
    assert print_user_model(reparsed) == printed


@settings(max_examples=60, deadline=None)
@given(random_models())
def test_interchange_dict_stable_after_reparse(model):
    printed = print_user_model(model)
    first = load_model(printed)
    second = load_model(print_user_model(first))
    assert model_to_dict(second) == model_to_dict(first)


@settings(max_examples=100, deadline=None)
@given(identifiers)
def test_identifiers_lex_as_single_token(name):
    tokens = tokenize(name)
    assert len(tokens) == 2  # IDENT + EOF
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].value == name


@settings(max_examples=100, deadline=None)
@given(st.text(st.characters(blacklist_characters="'\\\n",
                             blacklist_categories=("Cs",)), max_size=30))
def test_string_literals_roundtrip_through_lexer(value):
    tokens = tokenize(f"'{value}'")
    assert tokens[0].kind is TokenKind.STRING
    assert tokens[0].value == value


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_integers_lex_exactly(number):
    tokens = tokenize(str(number))
    assert tokens[0].kind is TokenKind.INTEGER
    assert int(tokens[0].value) == number


@settings(max_examples=50, deadline=None)
@given(st.lists(identifiers, min_size=1, max_size=5))
def test_qualified_names_roundtrip(parts):
    from repro.sysml.parser import Parser
    text = "::".join(parts)
    parser = Parser(text)
    qname = parser._parse_qualified_name()
    assert qname.parts == parts
