"""Tests for the model metric/navigation queries used by Table I."""

from repro.sysml import (count_definition_closure, definitions_in,
                         elaborate, instance_counts, load_model,
                         model_summary, scope_counts, specializations_of,
                         usages_in, usages_typed_by)
from repro.sysml.queries import instance_counts_of_tree


class TestStructuralQueries:
    def test_definitions_in_scope(self, emco_model):
        emco_pkg = emco_model.find("EMCO")
        part_defs = definitions_in(emco_pkg, "part")
        names = {d.name for d in part_defs}
        assert {"EMCODriver", "EMCOParameters", "EMCOVariables",
                "EMCOMethods", "EMCO", "EMCOMachineData",
                "EMCOServices"} <= names

    def test_port_definitions_in_scope(self, emco_model):
        emco_pkg = emco_model.find("EMCO")
        port_defs = definitions_in(emco_pkg, "port")
        assert {d.name for d in port_defs} == {"EMCOVar", "EMCOMethod"}

    def test_usages_in_scope(self, emco_model):
        driver = emco_model.find("emcoDriver")
        attribute_usages = usages_in(driver, "attribute")
        assert any(u.name == "actualX" for u in attribute_usages)

    def test_usages_typed_by_definition(self, emco_model):
        machine_def = emco_model.find("ISA95::Machine")
        usages = usages_typed_by(emco_model, machine_def)
        assert any(u.name == "emco" for u in usages)

    def test_usages_typed_by_respects_transitivity_flag(self, emco_model):
        machine_def = emco_model.find("ISA95::Machine")
        direct = usages_typed_by(emco_model, machine_def, transitive=False)
        assert not any(u.name == "emco" for u in direct)

    def test_specializations_of(self, emco_model):
        driver_def = emco_model.find("ISA95::Driver")
        specialized = {d.name for d in
                       specializations_of(emco_model, driver_def)}
        assert {"MachineDriver", "GenericDriver", "EMCODriver"} <= specialized


class TestInstanceCounts:
    def test_counts_for_emco_driver(self, emco_model):
        driver = emco_model.find("emcoDriver")
        counts = instance_counts(driver)
        # emcoDriver + emcoParameters/emcoVariables/emcoMethods +
        # emcoSystemStatus + emcoAxesPositions = 6 parts
        assert counts.part_instances == 6
        # 3 parameters + actualX + port internals (value, description,
        # identifier) + action out param
        assert counts.attribute_instances >= 7
        assert counts.port_instances == 2
        assert counts.binding_connectors == 1

    def test_counts_addition(self, emco_model):
        driver = emco_model.find("emcoDriver")
        counts = instance_counts(driver)
        doubled = counts + counts
        assert doubled.part_instances == 2 * counts.part_instances
        assert doubled.port_instances == 2 * counts.port_instances

    def test_counts_of_tree_matches_walk(self, emco_model):
        driver = emco_model.find("emcoDriver")
        tree = elaborate(driver)
        counts = instance_counts_of_tree(tree)
        assert counts.part_instances == tree.count_kind("part")


class TestDefinitionClosure:
    def test_emco_closure_counts_driver_and_machine_defs(self, emco_model):
        emco = emco_model.find(
            "ICETopology::UniVR::Verona::ICELab::ICEProductionLine"
            "::workCell02::emco")
        closure = count_definition_closure(emco)
        # EMCO + EMCOMachineData + EMCOServices + machine-side
        # AxesPositions/SystemStatus >= 5
        assert closure >= 5

    def test_closure_of_untyped_usage_is_zero(self):
        model = load_model("part lonely;")
        assert count_definition_closure(model.find("lonely")) == 0


class TestScopeCounts:
    def test_scope_counts_combines_defs_and_instances(self, emco_model):
        driver = emco_model.find("emcoDriver")
        counts = scope_counts(emco_model, driver)
        assert counts.part_definitions > 0
        assert counts.part_instances == 6


class TestModelSummary:
    def test_summary_keys(self, emco_model):
        summary = model_summary(emco_model)
        assert summary["PartDefinition"] >= 10
        assert summary["PortDefinition"] >= 2
        assert summary["BindingConnector"] == 2
        assert summary["Package"] >= 3  # ISA95, EMCO, stdlib
