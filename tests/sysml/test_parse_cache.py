"""Parse-layer caching and the model content fingerprint."""

import pytest

from repro.cache import ArtifactCache
from repro.obs import METRICS
from repro.sysml import load_model

SOURCE_A = "part def M { attribute a : Real; } part m : M;"
SOURCE_B = "part def N { attribute b : Real; } part n : N;"


@pytest.fixture()
def cache(tmp_path):
    METRICS.reset()
    return ArtifactCache(tmp_path / "cache")


class TestParseCache:
    def test_second_load_hits_the_cache(self, cache):
        load_model(SOURCE_A, cache=cache)
        before = METRICS.snapshot()["cache.hits"]
        model = load_model(SOURCE_A, cache=cache)
        assert METRICS.snapshot()["cache.hits"] > before
        assert model.member("m") is not None

    def test_cached_and_fresh_models_are_equivalent(self, cache):
        fresh = load_model(SOURCE_A)
        load_model(SOURCE_A, cache=cache)
        cached = load_model(SOURCE_A, cache=cache)
        assert ([e.name for e in cached.owned_elements]
                == [e.name for e in fresh.owned_elements])

    def test_changed_source_misses(self, cache):
        load_model(SOURCE_A, cache=cache)
        misses_before = METRICS.snapshot()["cache.misses"]
        load_model(SOURCE_B, cache=cache)
        # the changed user source re-parses (the shared stdlib may hit)
        assert METRICS.snapshot()["cache.misses"] > misses_before

    def test_parallel_parse_matches_serial(self, cache):
        serial = load_model(SOURCE_A, SOURCE_B)
        parallel = load_model(SOURCE_A, SOURCE_B, jobs=2)
        assert serial.content_fingerprint == parallel.content_fingerprint
        assert ([e.name for e in serial.owned_elements]
                == [e.name for e in parallel.owned_elements])


class TestContentFingerprint:
    def test_set_and_stable(self):
        first = load_model(SOURCE_A)
        second = load_model(SOURCE_A)
        assert first.content_fingerprint
        assert first.content_fingerprint == second.content_fingerprint

    def test_sensitive_to_source_text(self):
        assert (load_model(SOURCE_A).content_fingerprint
                != load_model(SOURCE_B).content_fingerprint)

    def test_sensitive_to_filenames(self):
        assert (load_model(SOURCE_A,
                           filenames=["x.sysml"]).content_fingerprint
                != load_model(SOURCE_A,
                              filenames=["y.sysml"]).content_fingerprint)

    def test_sensitive_to_stdlib_flag(self):
        bare = "part def M; part m : M;"  # resolvable without stdlib
        with_lib = load_model(bare, include_stdlib=True)
        without = load_model(bare, include_stdlib=False)
        assert with_lib.content_fingerprint != without.content_fingerprint
