"""ModelSession update semantics.

The session is the resolver-side half of the incremental engine: it
absorbs source edits in place and reports, through
:class:`ModelUpdate`, exactly which anchors the downstream pipeline
must invalidate. These tests pin the precision of that report —
comment edits are clean, a value edit dirties one usage, a library
edit propagates semantically but stays attributed to the library.
"""

import pytest

from repro.sysml.depgraph import find_by_path
from repro.sysml.incremental import ModelSession

LIBRARY = """
package Lib {
    abstract part def Gadget {
        attribute serial : String;
    }
    part def Widget :> Gadget {
        attribute size : Integer;
    }
}
"""

PLANT = """
package Plant {
    import Lib::*;
    part w1 : Widget {
        attribute size : Integer = 3;
    }
    part w2 : Widget {
        attribute size : Integer = 5;
    }
}
"""

NAMES = ["lib.sysml", "plant.sysml"]


def session():
    return ModelSession(LIBRARY, PLANT, filenames=NAMES)


def paths(keys):
    return sorted(key.path for key in keys)


class TestCleanUpdates:
    def test_identical_sources_are_clean(self):
        update = session().update(LIBRARY, PLANT, filenames=NAMES)
        assert update.clean
        assert not update.full_rebuild
        assert update.changed_sources == ()

    def test_comment_only_edit_is_clean(self):
        update = session().update(
            LIBRARY, PLANT + "\n// reviewed\n", filenames=NAMES)
        assert update.clean
        # the file did change — only its meaning did not
        assert update.changed_sources == ("plant.sysml",)


class TestLocalEdit:
    def test_value_edit_dirties_exactly_one_usage(self):
        update = session().update(
            LIBRARY, PLANT.replace("= 3", "= 4"), filenames=NAMES)
        assert not update.clean
        assert update.changed_sources == ("plant.sysml",)
        assert paths(update.changed_anchors) == ["Plant::w1"]
        assert not update.full_rebuild

    def test_model_object_is_stable_and_reflects_the_edit(self):
        live = session()
        before = live.model
        live.update(LIBRARY, PLANT.replace("= 3", "= 7"), filenames=NAMES)
        assert live.model is before
        assert find_by_path(live.model, "Plant::w1") is not None


class TestLibraryEdit:
    def test_propagates_semantically_but_blames_the_library(self):
        deeper = LIBRARY.replace(
            "attribute serial : String;",
            "attribute serial : String;\n"
            "        attribute batch : String;")
        update = session().update(deeper, PLANT, filenames=NAMES)
        assert update.changed_sources == ("lib.sysml",)
        # local edits name the library anchor only...
        assert paths(update.edited_anchors) == ["Lib::Gadget"]
        # ...while the dirty set reaches every dependent usage
        dirty = paths(update.dirty_anchors)
        assert "Plant::w1" in dirty and "Plant::w2" in dirty
        assert update.rounds >= 1


class TestStructuralChange:
    def test_removed_source_reports_removed_anchors(self):
        live = session()
        update = live.update(LIBRARY, filenames=["lib.sysml"])
        assert not update.clean
        assert "Plant::w1" in paths(update.removed_anchors)
        assert find_by_path(live.model, "Plant::w1") is None

    def test_broken_revision_raises_like_a_cold_load(self):
        live = session()
        with pytest.raises(Exception, match="Nowhere9"):
            live.update(LIBRARY, PLANT.replace("Widget", "Nowhere9"),
                        filenames=NAMES)
