"""Tests for name resolution (specializations, typings, chains, imports)."""

import pytest

from repro.sysml import (BindingConnector, PartDefinition, PerformAction,
                         ResolutionError, load_model)


class TestSpecializationResolution:
    def test_simple_specialization(self):
        model = load_model("""
            abstract part def Driver;
            part def EMCODriver :> Driver;
        """)
        emco = model.find("EMCODriver")
        driver = model.find("Driver")
        assert emco.specializations == [driver]

    def test_transitive_supertypes(self, emco_model):
        emco_driver = emco_model.find("EMCO::EMCODriver")
        names = [t.name for t in emco_driver.all_supertypes()]
        assert names == ["MachineDriver", "Driver"]

    def test_conforms_to(self, emco_model):
        emco_driver = emco_model.find("EMCO::EMCODriver")
        driver = emco_model.find("ISA95::Driver")
        assert emco_driver.conforms_to(driver)
        assert not driver.conforms_to(emco_driver)

    def test_unresolvable_specialization_raises(self):
        with pytest.raises(ResolutionError):
            load_model("part def A :> Nowhere;")

    def test_qualified_specialization_target(self):
        model = load_model("""
            package Lib { abstract part def Base; }
            part def X :> Lib::Base;
        """)
        x = model.find("X")
        assert x.specializations[0].qualified_name == "Lib::Base"


class TestTypingResolution:
    def test_usage_typed_by_definition(self, emco_model):
        emco = emco_model.find(
            "ICETopology::UniVR::Verona::ICELab::ICEProductionLine"
            "::workCell02::emco")
        assert emco.typ.qualified_name == "EMCO::EMCO"

    def test_scalar_type_from_stdlib(self, emco_model):
        ip = emco_model.find("EMCO::EMCODriver::EMCOParameters::ip")
        assert ip.typ.qualified_name == "ScalarValues::String"

    def test_conjugated_typing(self, emco_model):
        port = emco_model.find(
            "ICETopology::UniVR::Verona::ICELab::ICEProductionLine"
            "::workCell02::emco::emcoMachineData::emcoAxesPosition"
            "::actual_X_EMCOVar_conj")
        assert port.conjugated
        assert port.typ.name == "EMCOVar"

    def test_unresolvable_type_raises(self):
        with pytest.raises(ResolutionError):
            load_model("part x : Missing;")

    def test_typing_resolves_through_wildcard_import(self):
        model = load_model("""
            package Lib { part def Thing; }
            package App {
                import Lib::*;
                part thing : Thing;
            }
        """)
        thing = model.find("App::thing")
        assert thing.typ.qualified_name == "Lib::Thing"

    def test_specific_import(self):
        model = load_model("""
            package Lib { part def Thing; }
            package App {
                import Lib::Thing;
                part thing : Thing;
            }
        """)
        assert model.find("App::thing").typ.name == "Thing"

    def test_recursive_import(self):
        model = load_model("""
            package Lib { package Deep { part def Thing; } }
            package App {
                import Lib::*::*;
                part thing : Thing;
            }
        """)
        assert model.find("App::thing").typ.name == "Thing"

    def test_inherited_member_visible_through_typing(self, emco_model):
        # emcoParameters : EMCOParameters exposes the def's 'ip'
        params = emco_model.find("emcoDriver::emcoParameters")
        assert "ip" in params.effective_members()
        assert "ip_port" in params.effective_members()


class TestRedefinitionResolution:
    def test_shorthand_redefinition_gets_name_and_target(self, emco_model):
        params = emco_model.find("emcoDriver::emcoParameters")
        ip = params.member("ip")
        assert ip is not None
        assert ip.redefines[0].qualified_name == \
            "EMCO::EMCODriver::EMCOParameters::ip"

    def test_redefinition_value(self, emco_model):
        params = emco_model.find("emcoDriver::emcoParameters")
        assert params.member("ip").value.value == "10.197.12.11"
        assert params.member("ip_port").value.value == 5557

    def test_unresolvable_redefinition_raises(self):
        with pytest.raises(ResolutionError):
            load_model("""
                part def P { attribute a : String; }
                part p : P { :>> nonexistent = 'x'; }
            """)


class TestChainResolution:
    def test_bind_endpoints(self, emco_model):
        binds = [b for b in emco_model.elements_of_type(BindingConnector)]
        assert len(binds) == 2
        for bind in binds:
            assert bind.left is not None
            assert bind.right is not None

    def test_bind_reaches_port_internal_attribute(self, emco_model):
        bind = next(
            b for b in emco_model.elements_of_type(BindingConnector)
            if str(b.left_chain) == "pp_actual_X_EMCOVar.value")
        assert bind.left.name == "value"
        assert bind.right.name == "actualX"

    def test_perform_target_is_action(self, emco_model):
        perform = next(iter(emco_model.elements_of_type(PerformAction)))
        assert perform.target.name == "operation"
        assert perform.target.kind == "action"

    def test_unresolvable_chain_raises(self):
        with pytest.raises(ResolutionError):
            load_model("""
                part p {
                    attribute a : ScalarValues::String;
                    bind a = missing.chain;
                }
            """)

    def test_chain_middle_member_missing(self):
        with pytest.raises(ResolutionError) as exc:
            load_model("""
                part p {
                    attribute a : ScalarValues::String;
                    part q { attribute b : ScalarValues::String; }
                    bind a = q.nope;
                }
            """)
        assert "no member 'nope'" in str(exc.value)


class TestScoping:
    def test_inner_scope_shadows_outer(self):
        model = load_model("""
            part def Thing { attribute tag : String; }
            package Outer {
                part def Thing;
                part x : Thing;
            }
        """)
        x = model.find("Outer::x")
        assert x.typ.qualified_name == "Outer::Thing"

    def test_sibling_package_not_visible_without_import(self):
        with pytest.raises(ResolutionError):
            load_model("""
                package A { part def Secret; }
                package B { part s : Secret; }
            """)

    def test_import_does_not_leak_to_siblings(self):
        with pytest.raises(ResolutionError):
            load_model("""
                package Lib { part def Thing; }
                package A { import Lib::*; }
                package B { part t : Thing; }
            """)

    def test_model_root_members_globally_visible(self):
        model = load_model("""
            part def Global;
            package P { part g : Global; }
        """)
        assert model.find("P::g").typ.name == "Global"


class TestMultiSourceModels:
    def test_model_built_from_multiple_texts(self):
        model = load_model(
            "package Lib { part def M; }",
            "part m : Lib::M;",
        )
        assert model.find("m").typ.qualified_name == "Lib::M"

    def test_stdlib_can_be_disabled(self):
        with pytest.raises(ResolutionError):
            load_model("attribute a : String;", include_stdlib=False)

    def test_stdlib_scalar_hierarchy(self):
        model = load_model("")
        integer = model.find("ScalarValues::Integer")
        real = model.find("ScalarValues::Real")
        assert integer.conforms_to(real)
