"""Tests for instance elaboration and binding propagation."""

import pytest

from repro.sysml import (ElaborationError, elaborate, elaborate_model,
                         load_model, propagate_bindings)
from repro.sysml.instances import Elaborator


def model_and_root(source, root_name):
    model = load_model(source)
    usage = model.find(root_name)
    assert usage is not None, root_name
    return model, elaborate(usage)


class TestBasicElaboration:
    def test_part_with_attributes(self):
        _, tree = model_and_root("""
            part def Machine { attribute speed : Real; }
            part m : Machine;
        """, "m")
        assert tree.kind == "part"
        speed = tree.child("speed")
        assert speed is not None
        assert speed.kind == "attribute"
        assert speed.type_name == "ScalarValues::Real"

    def test_nested_parts(self):
        _, tree = model_and_root("""
            part def Cell { part def Inner { attribute x : Real; }
                            part inner : Inner; }
            part c : Cell;
        """, "c")
        assert tree.find("inner.x") is not None

    def test_definitions_not_instantiated(self):
        _, tree = model_and_root("""
            part def Cell { part def NotInstantiated; }
            part c : Cell;
        """, "c")
        assert tree.child("NotInstantiated") is None

    def test_own_members_merge_with_type_members(self):
        _, tree = model_and_root("""
            part def Machine { attribute speed : Real; }
            part m : Machine { attribute extra : String; }
        """, "m")
        assert tree.child("speed") is not None
        assert tree.child("extra") is not None

    def test_inherited_members_through_specialization(self):
        _, tree = model_and_root("""
            abstract part def Base { attribute common : String; }
            part def Derived :> Base { attribute own : Real; }
            part d : Derived;
        """, "d")
        assert tree.child("common") is not None
        assert tree.child("own") is not None

    def test_reference_parts_not_expanded(self):
        _, tree = model_and_root("""
            part def Machine { attribute a : Real; }
            part def Cell { ref part m : Machine; }
            part c : Cell;
        """, "c")
        ref_node = tree.child("m")
        assert ref_node.is_reference
        assert ref_node.children == []

    def test_literal_value_attached(self):
        _, tree = model_and_root("""
            part def P { attribute ip : String; }
            part p : P { :>> ip = '10.0.0.1'; }
        """, "p")
        assert tree.child("ip").value == "10.0.0.1"

    def test_redefinition_replaces_inherited_member(self):
        _, tree = model_and_root("""
            part def P { attribute ip : String; }
            part p : P { :>> ip = 'x'; }
        """, "p")
        ips = [c for c in tree.children if c.name == "ip"]
        assert len(ips) == 1

    def test_redefined_value_inherited_by_usage(self):
        _, tree = model_and_root("""
            part def P { attribute ip : String; }
            part template : P { :>> ip = 'fixed'; }
        """, "template")
        assert tree.child("ip").value == "fixed"


class TestPortElaboration:
    SOURCE = """
        port def Var {
            in attribute value : Real;
            attribute description : String;
        }
        part def Machine {
            port reading : Var;
            port feeding : ~Var;
        }
        part m : Machine;
    """

    def test_port_attributes_expanded(self):
        _, tree = model_and_root(self.SOURCE, "m")
        assert tree.find("reading.value") is not None
        assert tree.find("reading.description") is not None

    def test_port_direction_preserved(self):
        _, tree = model_and_root(self.SOURCE, "m")
        assert tree.find("reading.value").direction == "in"

    def test_conjugated_port_flips_direction(self):
        _, tree = model_and_root(self.SOURCE, "m")
        assert tree.find("feeding.value").direction == "out"

    def test_conjugation_flag_on_port_node(self):
        _, tree = model_and_root(self.SOURCE, "m")
        assert tree.child("feeding").conjugated
        assert not tree.child("reading").conjugated

    def test_double_conjugation_restores_direction(self):
        _, tree = model_and_root("""
            port def Var { in attribute value : Real; }
            part def Wrapper { port inner : ~Var; }
            part def Outer { part w : Wrapper; }
            part o : Outer;
        """, "o")
        # single conjugation inside a non-conjugated parent
        assert tree.find("w.inner.value").direction == "out"


class TestActionElaboration:
    def test_action_parameters(self):
        _, tree = model_and_root("""
            part def Machine {
                action isReady { out ready : Boolean; }
            }
            part m : Machine;
        """, "m")
        action = tree.child("isReady")
        assert action.kind == "action"
        ready = action.child("ready")
        assert ready.direction == "out"

    def test_action_inside_port_def(self):
        _, tree = model_and_root("""
            port def Method {
                out action operation { out ready : Boolean; }
            }
            part def M { port method : Method; }
            part m : M;
        """, "m")
        assert tree.find("method.operation.ready") is not None


class TestCyclesAndDepth:
    def test_self_recursive_structure_terminates(self):
        model = load_model("""
            part def Node { part child : Node; }
            part n : Node;
        """)
        tree = elaborate(model.find("n"))
        # expansion stops when the same definition recurs on the stack
        assert tree.child("child") is not None
        assert tree.find("child.child") is None

    def test_max_depth_guard(self):
        model = load_model("""
            part def L0 { attribute a : Real; }
            part def L1 { part x : L0; }
            part def L2 { part x : L1; }
            part def L3 { part x : L2; }
            part root : L3;
        """)
        with pytest.raises(ElaborationError):
            Elaborator(max_depth=2).elaborate(model.find("root"))


class TestModelElaboration:
    def test_elaborate_model_returns_top_level_parts(self, emco_model):
        roots = elaborate_model(emco_model)
        names = {r.name for r in roots}
        assert "ICETopology" in names
        assert "emcoDriver" in names

    def test_usages_inside_definitions_not_elaborated(self):
        model = load_model("""
            part def Lib { part inner : Lib2; }
            part def Lib2;
        """)
        assert elaborate_model(model) == []


class TestBindingPropagation:
    def test_value_flows_across_bind(self):
        _, tree = model_and_root("""
            port def Var { in attribute value : Real; }
            part def M {
                attribute actualX : Real;
                port p : Var;
                bind p.value = actualX;
            }
            part m : M { :>> actualX = 42.0; }
        """, "m")
        assert propagate_bindings(tree) >= 1
        assert tree.find("p.value").value == pytest.approx(42.0)

    def test_value_flows_in_reverse_direction(self):
        _, tree = model_and_root("""
            port def Var { in attribute value : String; }
            part def M {
                attribute label : String;
                port p : Var;
                bind label = p.value;
            }
            part m : M;
        """, "m")
        tree.find("p.value").value = "hello"
        propagate_bindings(tree)
        assert tree.child("label").value == "hello"

    def test_chained_binds_reach_fixpoint(self):
        _, tree = model_and_root("""
            part def M {
                attribute a : Real;
                attribute b : Real;
                attribute c : Real;
                bind b = a;
                bind c = b;
            }
            part m : M { :>> a = 7.0; }
        """, "m")
        propagated = propagate_bindings(tree)
        assert propagated == 2
        assert tree.child("c").value == pytest.approx(7.0)

    def test_no_values_no_propagation(self):
        _, tree = model_and_root("""
            part def M {
                attribute a : Real;
                attribute b : Real;
                bind b = a;
            }
            part m : M;
        """, "m")
        assert propagate_bindings(tree) == 0


class TestInstanceNodeApi:
    def test_path(self):
        _, tree = model_and_root("""
            part def C { part def I { attribute x : Real; } part i : I; }
            part c : C;
        """, "c")
        assert tree.find("i.x").path == "c.i.x"

    def test_walk_counts(self):
        _, tree = model_and_root("""
            part def C {
                attribute a : Real;
                attribute b : Real;
                part def I { attribute x : Real; }
                part i : I;
            }
            part c : C;
        """, "c")
        assert tree.count_kind("attribute") == 3
        assert tree.count_kind("part") == 2  # c and i

    def test_children_of_kind(self):
        _, tree = model_and_root("""
            part def C { attribute a : Real; port def P; part def I; part i : I; }
            part c : C;
        """, "c")
        assert [n.name for n in tree.children_of_kind("attribute")] == ["a"]

    def test_find_missing_returns_none(self):
        _, tree = model_and_root("part def C; part c : C;", "c")
        assert tree.find("nope.deeper") is None
