"""Edge-case coverage for the SysML front end gathered during review."""

import pytest

from repro.sysml import (LexerError, ParseError, ResolutionError,
                         elaborate, load_model, model_summary,
                         print_element, scope_counts, validate_model)


class TestLexerEdges:
    def test_empty_block_comment(self):
        model = load_model("/**/ part def M { attribute a : Real; }")
        assert model.find("M") is not None

    def test_comment_at_eof_without_newline(self):
        model = load_model("part def M { attribute a : Real; } // tail")
        assert model.find("M") is not None

    def test_adjacent_operators(self):
        # ':>>' then '>' would be junk; make sure ':>' ':>' parses as two
        from repro.sysml import tokenize
        from repro.sysml.tokens import TokenKind
        kinds = [t.kind for t in tokenize(":>:>")][:-1]
        assert kinds == [TokenKind.SPECIALIZES, TokenKind.SPECIALIZES]

    def test_number_then_ident(self):
        from repro.sysml import tokenize
        tokens = tokenize("5557x")
        assert tokens[0].value == "5557"
        assert tokens[1].value == "x"


class TestParserEdges:
    def test_deeply_nested_bodies(self):
        depth = 30
        source = ""
        for i in range(depth):
            source += f"part def L{i} {{ "
        source += "attribute leaf : Real;" + " }" * depth
        model = load_model(source)
        assert model.find("L0") is not None

    def test_trailing_content_after_package(self):
        model = load_model("package P { } part def M "
                           "{ attribute a : Real; }")
        assert model.find("M") is not None

    def test_doc_only_body(self):
        model = load_model("part def M { doc /* only docs */ }")
        assert model.find("M").documentation == "only docs"

    def test_empty_source(self):
        model = load_model("")
        assert model_summary(model)  # stdlib only

    def test_string_value_with_path_chars(self):
        model = load_model("""
            part def P { attribute path : String; }
            part p : P { :>> path = '/opt/programs/part 42.nc'; }
        """)
        assert model.find("p").member("path").value.value == \
            "/opt/programs/part 42.nc"


class TestResolutionEdges:
    def test_self_typed_usage_caught_by_validation(self):
        # 'part x : x;' resolves (the name finds the usage itself) but
        # the resulting type cycle is a validation error
        model = load_model("part x : x;")
        report = validate_model(model)
        assert any(d.rule == "cyclic-specialization"
                   for d in report.errors)

    def test_deep_qualified_name(self):
        model = load_model("""
            package A { package B { package C { part def D; } } }
            part d : A::B::C::D;
        """)
        assert model.find("d").typ.qualified_name == "A::B::C::D"

    def test_import_of_single_member(self):
        model = load_model("""
            package Lib { part def M; part def Hidden; }
            package App {
                import Lib::M;
                part m : M;
            }
        """)
        assert model.find("App::m").typ.name == "M"
        with pytest.raises(ResolutionError):
            load_model("""
                package Lib { part def M; part def Hidden; }
                package App {
                    import Lib::M;
                    part h : Hidden;
                }
            """)

    def test_diamond_specialization(self):
        model = load_model("""
            abstract part def Base { attribute common : Real; }
            part def Left :> Base;
            part def Right :> Base;
            part def Both :> Left, Right;
            part b : Both;
        """)
        tree = elaborate(model.find("b"))
        # 'common' inherited once despite the diamond
        assert len([c for c in tree.children
                    if c.name == "common"]) == 1


class TestElaborationEdges:
    def test_scope_counts_on_minimal_usage(self):
        model = load_model("part def M; part m : M;")
        counts = scope_counts(model, model.find("m"))
        assert counts.part_instances == 1
        assert counts.attribute_instances == 0

    def test_print_element_of_enum_nested_in_package(self):
        model = load_model("""
            package P { enum def E { a; b; } }
        """)
        text = print_element(model.find("P"))
        assert "enum def E {" in text

    def test_validation_of_empty_model(self):
        assert validate_model(load_model("")).ok
