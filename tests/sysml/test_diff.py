"""Model-diff tests."""

import pytest

from repro.sysml import diff_models, load_model

BASE = """
package Lib {
    part def Machine {
        attribute speed : Real;
        attribute mode : String;
    }
}
part m : Lib::Machine {
    :>> speed = 10.0;
}
"""


def load(text=BASE):
    return load_model(text)


class TestNoChanges:
    def test_identical_models_empty_diff(self):
        diff = diff_models(load(), load())
        assert diff.is_empty
        assert len(diff) == 0
        assert diff.render() == "(no changes)"

    def test_stdlib_excluded_by_default(self):
        diff = diff_models(load(), load())
        assert not diff.touching("ScalarValues")


class TestAdditions:
    def test_added_attribute(self):
        new = load(BASE.replace(
            "attribute mode : String;",
            "attribute mode : String;\n        attribute temp : Real;"))
        diff = diff_models(load(), new)
        assert [c.path for c in diff.added] == ["Lib::Machine::temp"]
        assert diff.removed == [] and diff.modified == []

    def test_added_machine_part(self):
        new = load(BASE + "\npart m2 : Lib::Machine;")
        diff = diff_models(load(), new)
        assert [c.path for c in diff.added] == ["m2"]

    def test_touching_filter(self):
        new = load(BASE + "\npart m2 : Lib::Machine;")
        diff = diff_models(load(), new)
        assert diff.touching("m2")
        assert not diff.touching("Lib")


class TestRemovals:
    def test_removed_attribute(self):
        new = load(BASE.replace("        attribute mode : String;\n", ""))
        diff = diff_models(load(), new)
        assert [c.path for c in diff.removed] == ["Lib::Machine::mode"]


class TestModifications:
    def test_changed_value(self):
        new = load(BASE.replace("10.0", "99.5"))
        diff = diff_models(load(), new)
        assert len(diff.modified) == 1
        change = diff.modified[0]
        assert change.path == "m::speed"
        assert "99.5" in change.detail

    def test_changed_type(self):
        new = load(BASE.replace("attribute speed : Real;",
                                "attribute speed : Integer;"))
        diff = diff_models(load(), new)
        assert any(c.path == "Lib::Machine::speed"
                   for c in diff.modified)

    def test_changed_direction(self):
        base = """
        port def P { in attribute value : Real; }
        """
        new_text = base.replace("in attribute", "out attribute")
        diff = diff_models(load(base), load(new_text))
        assert any("direction" in c.detail for c in diff.modified)

    def test_abstract_toggle(self):
        diff = diff_models(load("part def D;"),
                           load("abstract part def D;"))
        assert any("abstract" in c.detail for c in diff.modified)


class TestAnonymousConnectors:
    SOURCE = """
    port def P { in attribute value : Real; }
    part def M {
        attribute x : Real;
        port p : P;
        %s
    }
    """

    def test_added_bind_detected(self):
        old = load(self.SOURCE % "")
        new = load(self.SOURCE % "bind p.value = x;")
        diff = diff_models(old, new)
        assert any(c.kind == "added" and c.element_type == "Connector"
                   and "p.value" in str(c.detail) for c in diff.changes)

    def test_removed_bind_detected(self):
        old = load(self.SOURCE % "bind p.value = x;")
        new = load(self.SOURCE % "")
        diff = diff_models(old, new)
        assert any(c.kind == "removed" for c in diff.changes)

    def test_same_binds_no_diff(self):
        old = load(self.SOURCE % "bind p.value = x;")
        new = load(self.SOURCE % "bind p.value = x;")
        assert diff_models(old, new).is_empty


class TestIceLabDiff:
    def test_icelab_self_diff_empty(self):
        from repro.icelab import icelab_model
        assert diff_models(icelab_model(), icelab_model()).is_empty

    def test_icelab_machine_edit_localized(self):
        from repro.icelab import icelab_model
        from repro.icelab.model_gen import icelab_sources
        from repro.machines.specs import ICE_LAB_SPECS
        import copy
        specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
        emco = next(s for s in specs if s.name == "emco")
        emco.driver.parameters["ip"] = "10.197.99.99"
        old = icelab_model()
        new = load_model(*icelab_sources(specs))
        diff = diff_models(old, new)
        assert 0 < len(diff) <= 3
        assert all("emco" in c.path for c in diff.changes)
