"""JSON interchange round-trip tests."""

import json

import pytest

from repro.sysml import (load_model, model_from_dict, model_from_json,
                         model_to_dict, model_to_json, print_model,
                         validate_model)
from repro.sysml.errors import SysMLError
from repro.sysml.interchange import element_from_dict, element_to_dict


class TestSerialization:
    def test_model_to_dict_shape(self, emco_model):
        data = model_to_dict(emco_model)
        assert data["@type"] == "Model"
        names = [e.get("name") for e in data["ownedElements"]]
        assert "ISA95" in names
        assert "ICETopology" in names

    def test_definition_fields(self, emco_model):
        data = element_to_dict(emco_model.find("EMCO::EMCODriver"))
        assert data["@type"] == "PartDefinition"
        assert data["kind"] == "part"
        assert data["specializes"] == ["MachineDriver"]
        assert data["isAbstract"] is False

    def test_usage_fields(self, emco_model):
        port = emco_model.find(
            "emcoDriver::emcoVariables::emcoAxesPositions"
            "::pp_actual_X_EMCOVar")
        data = element_to_dict(port)
        assert data["@type"] == "PortUsage"
        assert data["type"] == "EMCOVar"
        assert data["isConjugated"] is False

    def test_value_serialized(self, emco_model):
        params = emco_model.find("emcoDriver::emcoParameters")
        data = element_to_dict(params)
        ip_entry = next(e for e in data["ownedElements"]
                        if e.get("name") == "ip" or
                        e.get("redefines") == ["ip"])
        assert ip_entry["value"] == {"@type": "Literal",
                                     "value": "10.197.12.11"}

    def test_json_text_is_valid_json(self, emco_model):
        parsed = json.loads(model_to_json(emco_model))
        assert parsed["@type"] == "Model"


class TestRoundTrip:
    def test_dict_roundtrip_is_stable(self, emco_model):
        data = model_to_dict(emco_model)
        rebuilt = model_from_dict(data)
        assert model_to_dict(rebuilt) == data

    def test_json_roundtrip_is_stable(self, emco_model):
        text = model_to_json(emco_model)
        rebuilt = model_from_json(text)
        assert model_to_json(rebuilt) == text

    def test_rebuilt_model_resolves_and_validates(self, emco_model):
        rebuilt = model_from_dict(model_to_dict(emco_model))
        assert validate_model(rebuilt).ok

    def test_rebuilt_model_prints_identically(self, emco_model):
        rebuilt = model_from_dict(model_to_dict(emco_model))
        assert print_model(rebuilt) == print_model(emco_model)

    def test_multiplicity_roundtrip(self):
        model = load_model("""
            abstract part def Machine;
            part def Cell { ref part machines : Machine [2..*]; }
        """)
        rebuilt = model_from_dict(model_to_dict(model))
        machines = rebuilt.find("Cell::machines")
        assert machines.multiplicity.lower == 2
        assert machines.multiplicity.upper is None

    def test_unresolved_rebuild_possible(self, emco_model):
        # resolve=False defers linking, e.g. for partial transfers
        rebuilt = model_from_dict(model_to_dict(emco_model), resolve=False)
        emco = rebuilt.find("EMCO::EMCODriver")
        assert emco.specializations == []


class TestErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(SysMLError):
            element_from_dict({"@type": "Banana"})

    def test_unknown_usage_kind_rejected(self):
        with pytest.raises(SysMLError):
            element_from_dict({"@type": "PartUsage", "kind": "banana"})
