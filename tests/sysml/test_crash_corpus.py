"""Replay the crash corpus: every checked-in shrunk reproducer must
pass its oracle forever, and the seeds that once produced failures are
pinned as explicit hypothesis ``@example``s of the seeded-corpus
property."""

import json
from pathlib import Path

import pytest
from hypothesis import example, given, settings, strategies as st

from conftest import CRASH_CORPUS_DIR, crash_corpus_files
from repro.testkit import TrialContext, generate_scenario, run_oracle

SOURCE_LEVEL = ("roundtrip", "interchange")


def _corpus_ids():
    return [path.stem for path in crash_corpus_files()]


def test_corpus_is_not_empty():
    assert crash_corpus_files(), (
        f"expected shrunk reproducers under {CRASH_CORPUS_DIR}")


@pytest.mark.parametrize("path", crash_corpus_files(), ids=_corpus_ids())
def test_reproducer_passes_its_oracle(path: Path):
    meta = json.loads(path.with_suffix(".json").read_text())
    ctx = TrialContext(sources=[path.read_text()])
    run_oracle(meta["oracle"], ctx)


@pytest.mark.parametrize("path", crash_corpus_files(), ids=_corpus_ids())
def test_reproducer_passes_all_source_oracles(path: Path):
    """Regressions rarely respect the oracle that first caught them."""
    ctx = TrialContext(sources=[path.read_text()])
    for name in SOURCE_LEVEL:
        run_oracle(name, ctx)


def _seeded_roundtrip(seed: int, hostile: bool) -> None:
    from repro.testkit import CorpusConfig
    ctx = TrialContext(
        scenario=generate_scenario(seed, CorpusConfig(hostile=hostile)))
    for name in SOURCE_LEVEL:
        run_oracle(name, ctx)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       hostile=st.booleans())
def test_seeded_corpus_front_end_property(seed, hostile):
    _seeded_roundtrip(seed, hostile)


# pin each crash-corpus seed so hypothesis replays the exact inputs
# that once failed, on every run, in both corpus modes
for _path in crash_corpus_files():
    _seed = json.loads(_path.with_suffix(".json").read_text())["seed"]
    for _hostile in (False, True):
        test_seeded_corpus_front_end_property = example(
            seed=_seed, hostile=_hostile)(
                test_seeded_corpus_front_end_property)
