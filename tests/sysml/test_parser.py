"""Unit tests for the SysML v2 parser (AST level)."""

import pytest

from repro.sysml import ast_nodes as ast
from repro.sysml.errors import ParseError
from repro.sysml.parser import parse


def only(tree):
    assert len(tree.members) == 1
    return tree.members[0]


class TestPackagesAndImports:
    def test_empty_package(self):
        node = only(parse("package P { }"))
        assert isinstance(node, ast.PackageNode)
        assert node.name == "P"
        assert node.members == []

    def test_nested_packages(self):
        node = only(parse("package A { package B { } }"))
        inner = node.members[0]
        assert isinstance(inner, ast.PackageNode)
        assert inner.name == "B"

    def test_wildcard_import(self):
        node = only(parse("import ISA95::*;"))
        assert isinstance(node, ast.ImportNode)
        assert str(node.name) == "ISA95"
        assert node.wildcard

    def test_specific_import(self):
        node = only(parse("import ISA95::Machine;"))
        assert str(node.name) == "ISA95::Machine"
        assert not node.wildcard

    def test_recursive_import(self):
        node = only(parse("import ISA95::*::*;"))
        assert node.wildcard and node.recursive


class TestDefinitions:
    def test_simple_part_def(self):
        node = only(parse("part def Machine;"))
        assert isinstance(node, ast.DefinitionNode)
        assert node.kind == "part"
        assert node.name == "Machine"
        assert not node.is_abstract

    def test_abstract_part_def(self):
        node = only(parse("abstract part def Driver;"))
        assert node.is_abstract

    def test_specialization_shorthand(self):
        node = only(parse("part def EMCODriver :> MachineDriver;"))
        assert [str(q) for q in node.specializes] == ["MachineDriver"]

    def test_specialization_keyword(self):
        node = only(parse("part def A specializes B { }"))
        assert [str(q) for q in node.specializes] == ["B"]

    def test_multiple_specializations(self):
        node = only(parse("part def C :> A, B;"))
        assert [str(q) for q in node.specializes] == ["A", "B"]

    def test_qualified_specialization(self):
        node = only(parse("part def X :> ISA95::Machine;"))
        assert [str(q) for q in node.specializes] == ["ISA95::Machine"]

    def test_all_definition_kinds(self):
        for kind in ("part", "attribute", "port", "action", "interface",
                     "connection", "item"):
            node = only(parse(f"{kind} def D;"))
            assert node.kind == kind

    def test_nested_definitions(self):
        node = only(parse("part def A { part def B { port def C; } }"))
        inner = node.members[0]
        assert inner.name == "B"
        assert inner.members[0].kind == "port"

    def test_doc_in_definition(self):
        node = only(parse("part def A { doc /* docs here */ }"))
        assert node.doc == "docs here"


class TestUsages:
    def test_typed_part_usage(self):
        node = only(parse("part emco : EMCO;"))
        assert isinstance(node, ast.UsageNode)
        assert node.kind == "part"
        assert node.name == "emco"
        assert str(node.type.name) == "EMCO"

    def test_ref_part_with_multiplicity(self):
        node = only(parse("ref part machines : Machine [*];"))
        assert node.is_ref
        assert node.multiplicity.lower == 0
        assert node.multiplicity.upper is None

    def test_exact_multiplicity(self):
        node = only(parse("part wheel : Wheel [4];"))
        assert node.multiplicity.lower == 4
        assert node.multiplicity.upper == 4

    def test_range_multiplicity(self):
        node = only(parse("part axle : Axle [1..2];"))
        assert node.multiplicity.lower == 1
        assert node.multiplicity.upper == 2

    def test_open_range_multiplicity(self):
        node = only(parse("part axle : Axle [1..*];"))
        assert node.multiplicity.lower == 1
        assert node.multiplicity.upper is None

    def test_attribute_with_value(self):
        node = only(parse("attribute ip : String = '10.0.0.1';"))
        assert node.kind == "attribute"
        assert isinstance(node.value, ast.Literal)
        assert node.value.value == "10.0.0.1"

    def test_attribute_with_integer_value(self):
        node = only(parse("attribute ip_port : Integer = 5557;"))
        assert node.value.value == 5557

    def test_attribute_with_real_value(self):
        node = only(parse("attribute x : Real = 3.19;"))
        assert node.value.value == pytest.approx(3.19)

    def test_attribute_with_boolean_value(self):
        node = only(parse("attribute ok : Boolean = true;"))
        assert node.value.value is True

    def test_conjugated_port_usage(self):
        node = only(parse("port p : ~EMCOVar;"))
        assert node.type.conjugated

    def test_postfix_conjugation(self):
        node = only(parse("port p : EMCOVar~;"))
        assert node.type.conjugated

    def test_directed_attribute(self):
        node = only(parse("in attribute value : Real;"))
        assert node.direction == "in"

    def test_out_action(self):
        node = only(parse("out action operation { out ready : Boolean; }"))
        assert node.kind == "action"
        assert node.direction == "out"
        param = node.members[0]
        assert param.kind == "attribute"
        assert param.direction == "out"
        assert param.name == "ready"

    def test_parameter_named_like_a_kind_keyword(self):
        # regression: 'in item : String;' must be a parameter named
        # 'item', not an anonymous item usage
        node = only(parse("in item : String;"))
        assert node.kind == "attribute"
        assert node.name == "item"
        assert node.direction == "in"
        node = only(parse("out port : Integer;"))
        assert node.name == "port"

    def test_bare_parameter_declaration(self):
        node = only(parse("out ready : Boolean;"))
        assert node.kind == "attribute"
        assert node.direction == "out"

    def test_usage_specializes(self):
        node = only(parse("part p :> base;"))
        assert [str(q) for q in node.specializes] == ["base"]

    def test_usage_redefines_keyword(self):
        node = only(parse("attribute value redefines value : Double;"))
        assert [str(q) for q in node.redefines] == ["value"]
        assert str(node.type.name) == "Double"

    def test_anonymous_usage_with_type(self):
        node = only(parse("part : EMCO;"))
        assert node.name is None


class TestShorthandRedefinition:
    def test_value_redefinition(self):
        node = only(parse(":>> ip = '10.197.12.11';"))
        assert node.kind == "redefinition"
        assert [str(q) for q in node.redefines] == ["ip"]
        assert node.value.value == "10.197.12.11"

    def test_redefinition_with_type(self):
        node = only(parse(":>> value : Double;"))
        assert str(node.type.name) == "Double"

    def test_redefinition_with_body(self):
        node = only(parse(":>> status { attribute detail : String; }"))
        assert len(node.members) == 1


class TestConnectorsAndBinds:
    def test_bind(self):
        node = only(parse("bind p.value = actualX;"))
        assert isinstance(node, ast.BindNode)
        assert str(node.left) == "p.value"
        assert str(node.right) == "actualX"

    def test_anonymous_connect(self):
        node = only(parse("connect emco.data to driver.vars;"))
        assert isinstance(node, ast.ConnectNode)
        assert node.kind == "connection"
        assert node.name is None

    def test_named_typed_connection(self):
        node = only(parse(
            "connection c : DataChannel connect emco.data to driver.vars;"))
        assert node.name == "c"
        assert str(node.type.name) == "DataChannel"

    def test_interface_connect(self):
        node = only(parse(
            "interface : DataInterface connect machine.p to driver.p;"))
        assert node.kind == "interface"
        assert node.name is None
        assert str(node.type.name) == "DataInterface"

    def test_interface_def_with_ends(self):
        node = only(parse("""
            interface def DataInterface {
                end machineEnd : ~EMCOVar;
                end driverEnd : EMCOVar;
            }
        """))
        assert isinstance(node, ast.DefinitionNode)
        ends = [m for m in node.members if isinstance(m, ast.EndNode)]
        assert len(ends) == 2
        assert ends[0].type.conjugated

    def test_plain_interface_usage_without_connect(self):
        node = only(parse("interface iface : DataInterface;"))
        assert isinstance(node, ast.UsageNode)
        assert node.kind == "interface"


class TestPerformAndAssignments:
    def test_perform_with_assignment(self):
        node = only(parse("""
            perform pp_is_ready.operation {
                out ready = call_is_ready.ready;
            }
        """))
        assert isinstance(node, ast.PerformNode)
        assert str(node.target) == "pp_is_ready.operation"
        assignment = node.members[0]
        assert isinstance(assignment, ast.AssignmentNode)
        assert assignment.direction == "out"
        assert assignment.name == "ready"
        assert str(assignment.value.chain) == "call_is_ready.ready"

    def test_perform_without_body(self):
        node = only(parse("perform startup.init;"))
        assert node.members == []


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("part def A { attribute x : T }")

    def test_unterminated_body(self):
        with pytest.raises(ParseError):
            parse("part def A {")

    def test_junk_member(self):
        with pytest.raises(ParseError):
            parse("part def A { = ; }")

    def test_bad_import(self):
        with pytest.raises(ParseError):
            parse("import ;")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse("part def A {\n  to to;\n}")
        assert exc.value.location.line == 2


class TestPaperListings:
    """The paper's Codes 1-5 must parse (modulo elided '...' bodies)."""

    def test_code1_hierarchy(self):
        tree = parse("""
            part def Topology {
                part def Enterprise {
                    part def Site {
                        part def Area {
                            part def ProductionLine {
                                attribute def ProductionLineVariables;
                                part def Workcell {
                                    ref part machines : Machine [*];
                                    part def WorkCellVariables;
                                }
                            }
                        }
                    }
                }
            }
        """)
        assert only(tree).name == "Topology"

    def test_code2_driver_specialization(self):
        tree = parse("""
            part def EMCODriver :> MachineDriver {
                part def EMCOParameters :> DriverParameters {
                    attribute ip : String;
                    attribute ip_port : Integer;
                    attribute program_file_path : String;
                }
                part def EMCOVariables :> DriverVariables {
                    port def EMCOVar { in attribute value : Real; }
                    part def AxesPositions;
                    part def SystemStatus;
                }
                part def EMCOMethods :> DriverMethods {
                    port def EMCOMethod {
                        attribute description : String;
                        out action operation { out ready : Boolean; }
                    }
                }
            }
        """)
        node = only(tree)
        assert node.name == "EMCODriver"
        assert len(node.members) == 3

    def test_code4_instantiation(self):
        tree = parse("""
            part ICETopology : Topology {
                part UniVR : Enterprise {
                    part workCell02 : Workcell {
                        part emco : EMCO {
                            ref part emcoDriver;
                            part emcoMachineData : EMCOMachineData {
                                part emcoAxesPosition : AxesPositions {
                                    attribute actualX : Double;
                                    bind actual_X_EMCOVar_conj.value = actualX;
                                }
                            }
                            part emcoServices : EMCOServices {
                                action isReady { out ready : Boolean; }
                            }
                        }
                    }
                }
            }
        """)
        assert only(tree).name == "ICETopology"

    def test_code5_driver_instantiation(self):
        tree = parse("""
            part emcoDriver : EMCODriver {
                part emcoParameters : EMCOParameters {
                    :>> ip = '10.197.12.11';
                    :>> ip_port = 5557;
                    :>> program_file_path = 'path/program/file';
                }
                part emcoVariables : EMCOVariables {
                    part emcoSystemStatus : SystemStatus;
                    part emcoAxesPositions : AxesPositions {
                        attribute actualX : Double;
                        port pp_actual_X_EMCOVar : EMCOVar;
                        bind pp_actual_X_EMCOVar.value = actualX;
                    }
                }
                part emcoMethods : EMCOMethods {
                    action call_is_ready {
                        out ready : Boolean;
                        perform pp_is_ready_EMCOMthd.operation {
                            out ready = call_is_ready.ready;
                        }
                    }
                    port pp_is_ready_EMCOMthd : EMCOMethod;
                }
            }
        """)
        assert only(tree).name == "emcoDriver"
