"""Model file I/O tests (.sysml and .json round trips)."""

import pytest

from repro.sysml import (SysMLError, convert_model_file, load_model_file,
                        load_model_files, model_to_dict, save_model_file)

SOURCE = """
package Lib {
    part def Machine { attribute speed : Real; }
}
part m : Lib::Machine { :>> speed = 4.5; }
"""


@pytest.fixture
def sysml_file(tmp_path):
    path = tmp_path / "factory.sysml"
    path.write_text(SOURCE)
    return path


class TestLoad:
    def test_load_sysml(self, sysml_file):
        model = load_model_file(sysml_file)
        assert model.find("m").typ.qualified_name == "Lib::Machine"

    def test_load_reports_filename_in_errors(self, tmp_path):
        bad = tmp_path / "broken.sysml"
        bad.write_text("part x : Missing;")
        with pytest.raises(SysMLError) as exc:
            load_model_file(bad)
        assert "broken.sysml" in str(exc.value)

    def test_unknown_suffix(self, tmp_path):
        weird = tmp_path / "model.xml"
        weird.write_text("<model/>")
        with pytest.raises(SysMLError, match="suffix"):
            load_model_file(weird)

    def test_load_multiple_files(self, tmp_path):
        lib = tmp_path / "lib.sysml"
        lib.write_text("package Lib { part def Machine; }")
        app = tmp_path / "app.sysml"
        app.write_text("part m : Lib::Machine;")
        model = load_model_files(lib, app)
        assert model.find("m").typ is not None

    def test_load_multiple_rejects_json(self, tmp_path):
        j = tmp_path / "m.json"
        j.write_text("{}")
        with pytest.raises(SysMLError):
            load_model_files(j)


class TestSaveAndConvert:
    def test_save_sysml_excludes_stdlib(self, sysml_file, tmp_path):
        model = load_model_file(sysml_file)
        out = tmp_path / "out.sysml"
        save_model_file(model, out)
        text = out.read_text()
        assert "package ScalarValues" not in text
        assert "part def Machine" in text

    def test_save_sysml_with_library(self, sysml_file, tmp_path):
        model = load_model_file(sysml_file)
        out = tmp_path / "full.sysml"
        save_model_file(model, out, include_library=True)
        assert "package ScalarValues" in out.read_text()

    def test_save_and_reload_json(self, sysml_file, tmp_path):
        model = load_model_file(sysml_file)
        out = tmp_path / "model.json"
        save_model_file(model, out)
        reloaded = load_model_file(out)
        assert model_to_dict(reloaded) == model_to_dict(model)

    def test_convert_text_to_json_to_text(self, sysml_file, tmp_path):
        json_path = tmp_path / "m.json"
        convert_model_file(sysml_file, json_path)
        text_path = tmp_path / "back.sysml"
        convert_model_file(json_path, text_path)
        model = load_model_file(text_path)
        assert model.find("m").member("speed").value.value == 4.5
