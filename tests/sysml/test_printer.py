"""Pretty-printer tests, including the parse -> print -> parse round-trip."""

import pytest

from repro.sysml import (load_model, model_to_dict, print_element,
                         print_model, validate_model)
from repro.sysml.builder import build_model
from repro.sysml.parser import parse
from repro.sysml.resolver import resolve_model

import sys
from pathlib import Path
sys.path.insert(0, str(Path(__file__).parent.parent))
from fixtures import EMCO_WORKCELL_SOURCE  # noqa: E402


def roundtrip(source: str) -> None:
    """Parse+print twice; the two printed forms must be identical and the
    re-parsed model must serialize to the same interchange dict."""
    first = load_model(source)
    printed = print_model(first)  # includes the stdlib packages
    second = load_model(printed, include_stdlib=False)
    assert print_model(second) == printed
    assert model_to_dict(second) == model_to_dict(first)


class TestRoundTrip:
    def test_definition_with_members(self):
        roundtrip("""
            part def M {
                attribute speed : ScalarValues::Real;
                port def P { in attribute value : ScalarValues::Real; }
                port p : P;
            }
        """)

    def test_abstract_and_specialization(self):
        roundtrip("""
            abstract part def Driver;
            part def EMCODriver :> Driver;
        """)

    def test_package_and_imports(self):
        roundtrip("""
            package Lib { part def Thing; }
            package App { import Lib::*; part t : Thing; }
        """)

    def test_values_and_redefinitions(self):
        roundtrip("""
            part def P { attribute ip : ScalarValues::String;
                         attribute n : ScalarValues::Integer;
                         attribute r : ScalarValues::Real;
                         attribute ok : ScalarValues::Boolean; }
            part p : P {
                :>> ip = '10.0.0.1';
                :>> n = 42;
                :>> r = 1.5;
                :>> ok = true;
            }
        """)

    def test_string_escaping(self):
        roundtrip(r"""
            part def P { attribute s : ScalarValues::String; }
            part p : P { :>> s = 'it\'s a \\ test'; }
        """)

    def test_binds_connects_performs(self):
        roundtrip("""
            port def Var { in attribute value : ScalarValues::Real; }
            port def Mthd { out action operation { out ready : ScalarValues::Boolean; } }
            part def M { port data : ~Var; port method : ~Mthd; }
            part def D { port vars : Var; port methods : Mthd; }
            part system {
                part m : M;
                part d : D;
                connect m.data to d.vars;
                interface : Mthd connect m.method to d.methods;
                part worker {
                    action run {
                        out ready : ScalarValues::Boolean;
                        perform d.methods.operation {
                            out ready = run.ready;
                        }
                    }
                }
            }
        """)

    def test_multiplicities(self):
        roundtrip("""
            abstract part def Machine;
            part def Cell {
                ref part machines : Machine [*];
                part fixed : Machine [4];
                part ranged : Machine [1..3];
                part open : Machine [2..*];
            }
        """)

    def test_directions(self):
        roundtrip("""
            port def P {
                in attribute input : ScalarValues::Real;
                out attribute output : ScalarValues::Real;
                inout attribute both : ScalarValues::Real;
            }
        """)

    def test_docs_preserved(self):
        source = """
            part def M {
                doc /* the machine */
                attribute speed : ScalarValues::Real;
            }
        """
        model = load_model(source)
        printed = print_model(model)
        assert "doc /* the machine */" in printed
        roundtrip(source)

    def test_full_emco_example_roundtrips(self):
        model = load_model(EMCO_WORKCELL_SOURCE)
        printed = print_model(model)
        # printed model includes the stdlib; re-load without injecting it again
        reparsed = load_model(printed, include_stdlib=False)
        assert print_model(reparsed) == printed
        assert validate_model(reparsed).ok


class TestPrintElement:
    def test_single_element(self, emco_model):
        emco_def = emco_model.find("EMCO::EMCODriver")
        text = print_element(emco_def)
        assert text.startswith("part def EMCODriver :> MachineDriver {")

    def test_conjugated_port_printed_with_tilde(self, emco_model):
        port = emco_model.find(
            "ICETopology::UniVR::Verona::ICELab::ICEProductionLine"
            "::workCell02::emco::emcoMachineData::emcoAxesPosition"
            "::actual_X_EMCOVar_conj")
        assert "~" in print_element(port)

    def test_ref_part_printed(self, emco_model):
        machine = emco_model.find("ISA95::Machine")
        text = print_element(machine)
        assert "ref part driver : Driver;" in text
        assert text.startswith("abstract part def Machine")
