"""Circuit breaker state machine under a fake clock."""

import pytest

from repro.obs import METRICS
from repro.resilience import (CircuitBreaker, CircuitOpen, STATE_CLOSED,
                              STATE_HALF_OPEN, STATE_OPEN)


@pytest.fixture(autouse=True)
def _reset_metrics():
    METRICS.reset()


class _Clock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return _Clock()


def _breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 5.0)
    return CircuitBreaker("test", clock=clock, **kwargs)


def _fail(breaker, times=1):
    for _ in range(times):
        breaker.allow()
        breaker.record_failure()


class TestTripping:
    def test_consecutive_failures_trip(self, clock):
        breaker = _breaker(clock)
        _fail(breaker, 2)
        assert breaker.state == STATE_CLOSED
        _fail(breaker)
        assert breaker.state == STATE_OPEN
        assert METRICS.snapshot().get("breaker.trips") == 1

    def test_success_resets_the_failure_streak(self, clock):
        breaker = _breaker(clock)
        _fail(breaker, 2)
        breaker.allow()
        breaker.record_success()
        _fail(breaker, 2)
        assert breaker.state == STATE_CLOSED

    def test_open_rejects_with_cooldown_hint(self, clock):
        breaker = _breaker(clock)
        _fail(breaker, 3)
        clock.advance(1.5)
        with pytest.raises(CircuitOpen) as info:
            breaker.allow()
        assert info.value.retriable
        assert info.value.retry_after == pytest.approx(3.5)
        assert METRICS.snapshot().get("breaker.open_rejections") == 1


class TestHalfOpen:
    def test_probe_success_closes(self, clock):
        breaker = _breaker(clock)
        _fail(breaker, 3)
        clock.advance(5.0)
        breaker.allow()  # the probe passes through
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert METRICS.snapshot().get("breaker.probes") == 1

    def test_probe_failure_reopens(self, clock):
        breaker = _breaker(clock)
        _fail(breaker, 3)
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        # the cooldown restarted: still rejecting shortly after
        clock.advance(1.0)
        with pytest.raises(CircuitOpen):
            breaker.allow()

    def test_probe_quota_is_bounded(self, clock):
        breaker = _breaker(clock, half_open_probes=2)
        _fail(breaker, 3)
        clock.advance(5.0)
        breaker.allow()
        breaker.allow()
        with pytest.raises(CircuitOpen):
            breaker.allow()  # third concurrent probe exceeds the quota
        breaker.record_success()
        assert breaker.state == STATE_HALF_OPEN  # one success of two
        breaker.record_success()
        assert breaker.state == STATE_CLOSED


class TestProtect:
    def test_protect_records_both_outcomes(self, clock):
        breaker = _breaker(clock, failure_threshold=1)
        with pytest.raises(RuntimeError):
            with breaker.protect():
                raise RuntimeError("dependency down")
        assert breaker.state == STATE_OPEN
        clock.advance(5.0)
        with breaker.protect():
            pass
        assert breaker.state == STATE_CLOSED


class TestValidation:
    def test_bad_threshold_rejected(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)

    def test_bad_probe_count_rejected(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0, clock=clock)
