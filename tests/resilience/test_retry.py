"""Retry policy: backoff schedule, deadlines, classification, metrics."""

import pytest

from repro.obs import METRICS
from repro.resilience import (DeadlineExceeded, RetryError, RetryPolicy,
                              retry_call)


@pytest.fixture(autouse=True)
def _reset_metrics():
    METRICS.reset()


class _Retriable(Exception):
    retriable = True


class _Hinted(Exception):
    retriable = True

    def __init__(self, retry_after):
        self.retry_after = retry_after
        super().__init__(f"retry after {retry_after}")


class _FakeClock:
    """Monotonic clock advanced by the recorded sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds

    def __call__(self):
        return self.now


def _failing(times, error=None):
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= times:
            raise error or _Retriable(f"failure {calls['n']}")
        return calls["n"]

    return fn


class TestSchedule:
    def test_succeeds_after_retries(self):
        clock = _FakeClock()
        result = retry_call(_failing(2), policy=RetryPolicy(seed=1),
                            sleep=clock.sleep, clock=clock)
        assert result == 3
        assert len(clock.sleeps) == 2

    def test_seeded_jitter_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.25,
                             seed=42)
        runs = []
        for _ in range(2):
            clock = _FakeClock()
            retry_call(_failing(4), policy=policy,
                       sleep=clock.sleep, clock=clock)
            runs.append(clock.sleeps)
        assert runs[0] == runs[1]
        # jittered, so not the bare exponential sequence
        assert runs[0] != [0.1, 0.2, 0.4, 0.8]

    def test_backoff_grows_and_caps_without_jitter(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=0.5,
                             multiplier=2.0, jitter=0.0)
        clock = _FakeClock()
        retry_call(_failing(5), policy=policy,
                   sleep=clock.sleep, clock=clock)
        assert clock.sleeps == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_retry_after_hint_is_a_lower_bound(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)
        clock = _FakeClock()
        retry_call(_failing(1, _Hinted(0.75)), policy=policy,
                   sleep=clock.sleep, clock=clock)
        assert clock.sleeps == [0.75]


class TestExhaustionAndDeadlines:
    def test_exhaustion_raises_retry_error(self):
        clock = _FakeClock()
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(RetryError) as info:
            retry_call(_failing(99), policy=policy,
                       sleep=clock.sleep, clock=clock)
        assert info.value.attempts == 3
        assert info.value.retriable
        assert isinstance(info.value.last, _Retriable)

    def test_overall_deadline_refuses_to_oversleep(self):
        clock = _FakeClock()
        policy = RetryPolicy(max_attempts=10, base_delay=0.4, jitter=0.0,
                             multiplier=1.0, overall_deadline=1.0)
        with pytest.raises(DeadlineExceeded) as info:
            retry_call(_failing(99), policy=policy,
                       sleep=clock.sleep, clock=clock)
        # two 0.4s backoffs fit in the 1.0s budget; the third would
        # overrun, so the call gives up instead of sleeping past it
        assert clock.sleeps == pytest.approx([0.4, 0.4])
        assert clock.now <= policy.overall_deadline
        assert info.value.attempts == 3

    def test_attempt_budget_clamps_to_overall_remainder(self):
        policy = RetryPolicy(attempt_deadline=2.0, overall_deadline=3.0)
        assert policy.attempt_budget(0.0) == 2.0
        assert policy.attempt_budget(2.5) == pytest.approx(0.5)
        assert RetryPolicy().attempt_budget() is None


class TestClassification:
    def test_non_retriable_propagates_immediately(self):
        clock = _FakeClock()
        with pytest.raises(ValueError):
            retry_call(_failing(2, ValueError("permanent")),
                       sleep=clock.sleep, clock=clock)
        assert clock.sleeps == []

    def test_retry_on_exception_tuple(self):
        clock = _FakeClock()
        policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay=0.01)
        result = retry_call(_failing(1, KeyError("transient")),
                            policy=policy, retry_on=(KeyError,),
                            sleep=clock.sleep, clock=clock)
        assert result == 2

    def test_retry_on_predicate(self):
        clock = _FakeClock()
        policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay=0.01)
        result = retry_call(
            _failing(1, RuntimeError("flaky")), policy=policy,
            retry_on=lambda error: "flaky" in str(error),
            sleep=clock.sleep, clock=clock)
        assert result == 2


class TestObservability:
    def test_metrics_and_on_retry_callback(self):
        clock = _FakeClock()
        seen = []
        retry_call(_failing(2), policy=RetryPolicy(seed=0),
                   on_retry=lambda attempt, error, delay:
                   seen.append((attempt, type(error).__name__)),
                   sleep=clock.sleep, clock=clock)
        assert seen == [(1, "_Retriable"), (2, "_Retriable")]
        snap = METRICS.snapshot()
        assert snap.get("resilience.attempts") == 3
        assert snap.get("resilience.retries") == 2
        assert snap.get("resilience.giveups", 0) == 0

    def test_giveup_counted(self):
        clock = _FakeClock()
        with pytest.raises(RetryError):
            retry_call(_failing(99), policy=RetryPolicy(max_attempts=2,
                                                        jitter=0.0),
                       sleep=clock.sleep, clock=clock)
        assert METRICS.snapshot().get("resilience.giveups") == 1


class TestPolicyValidation:
    def test_bad_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_bad_jitter_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
