"""Incremental regeneration tests."""

import copy

import pytest

from repro.codegen import (GenerationPipeline, PipelineOptions,
                           generate_configuration, regenerate)
from repro.icelab.model_gen import icelab_sources, load_icelab_model
from repro.machines.specs import ICE_LAB_SPECS
from repro.sysml import load_model


def edited_specs(edit):
    specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
    edit({s.name: s for s in specs})
    return specs


@pytest.fixture(scope="module")
def baseline():
    model = load_icelab_model()
    result = generate_configuration(
        model, options=PipelineOptions(namespace="icelab"))
    return model, result


def run_incremental(baseline, specs):
    old_model, previous = baseline
    new_model = load_model(*icelab_sources(specs))
    pipeline = GenerationPipeline(PipelineOptions(namespace="icelab"))
    # regenerate() is the deprecated classify-after-full-run API; it
    # keeps working one release (IncrementalEngine supersedes it)
    with pytest.deprecated_call():
        return regenerate(previous, old_model, new_model, pipeline)


class TestNoChange:
    def test_everything_reused(self, baseline):
        incremental = run_incremental(baseline, list(ICE_LAB_SPECS))
        assert incremental.fully_reused
        assert incremental.changed_machines == []
        assert len(incremental.reused_manifests) == 14
        assert incremental.diff.is_empty


class TestDriverParameterChange:
    def test_only_affected_workcell_regenerated(self, baseline):
        specs = edited_specs(
            lambda by: by["emco"].driver.parameters.update(
                {"ip": "10.197.88.88"}))
        incremental = run_incremental(baseline, specs)
        assert incremental.changed_machines == ["emco"]
        # emco sits on workcell02's server, which embeds the driver
        # connection parameters
        assert "workcell02-opcua-server.yaml" in \
            incremental.regenerated_manifests
        # client configs carry topics/endpoints, not driver parameters,
        # so the bridges do not redeploy for an IP change
        assert not any(name.startswith("opcua-client")
                       for name in incremental.regenerated_manifests)
        # untouched workcells keep their manifests byte-identical
        assert "workcell05-opcua-server.yaml" in \
            incremental.reused_manifests

    def test_summary(self, baseline):
        specs = edited_specs(
            lambda by: by["emco"].driver.parameters.update(
                {"ip": "10.197.88.88"}))
        incremental = run_incremental(baseline, specs)
        summary = incremental.summary()
        assert summary["changed_machines"] == ["emco"]
        assert summary["regenerated"] + summary["reused"] == 14


class TestVariableAddition:
    def test_new_variable_regenerates_server_and_client(self, baseline):
        from repro.isa95.levels import VariableSpec
        specs = edited_specs(
            lambda by: by["warehouse"].categories["Storage"].append(
                VariableSpec("humidity", "Real")))
        incremental = run_incremental(baseline, specs)
        assert incremental.changed_machines == ["warehouse"]
        assert "workcell05-opcua-server.yaml" in \
            incremental.regenerated_manifests
        # the fresh result reflects the new inventory
        config = incremental.result.machine_configs["warehouse"]
        assert any(v["name"] == "humidity" for v in config["variables"])


class TestGroupMembershipChange:
    def test_grown_machine_can_move_groups(self, baseline):
        from repro.isa95.levels import VariableSpec
        # grow fiam from 15 to 95 points: FFD packing changes
        specs = edited_specs(
            lambda by: by["fiam"].categories["Tightening"].extend(
                VariableSpec(f"extra_{i}", "Real") for i in range(80)))
        incremental = run_incremental(baseline, specs)
        assert "fiam" in incremental.changed_machines
        regenerated_clients = [name for name in
                               incremental.regenerated_manifests
                               if name.startswith("opcua-client")]
        assert regenerated_clients  # at least the affected groups


class TestMachineRemoval:
    def test_removed_machine_detected(self, baseline):
        specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS
                 if s.name != "spea"]
        incremental = run_incremental(baseline, specs)
        assert "spea" in incremental.changed_machines
        assert "workcell01-opcua-server.yaml" not in \
            incremental.result.manifests
