"""Factory-handbook generation tests."""

import pytest

from repro.codegen import (PipelineOptions, generate_configuration,
                           generate_handbook)
from repro.icelab import icelab_model


@pytest.fixture(scope="module")
def handbook():
    result = generate_configuration(
        icelab_model(), options=PipelineOptions(namespace="icelab"))
    return generate_handbook(result, title="ICE Laboratory handbook")


class TestHandbook:
    def test_title_and_regeneration_notice(self, handbook):
        assert handbook.startswith("# ICE Laboratory handbook")
        assert "do not edit by hand" in handbook

    def test_overview_counts(self, handbook):
        assert "**Workcells:** 6" in handbook
        assert "**Machines:** 10" in handbook
        assert "**Variables:** 498" in handbook

    def test_every_machine_has_a_section(self, handbook):
        for machine in ("spea", "emco", "ur5", "siemensPlc", "fiam",
                        "qcPc", "warehouse", "conveyor", "kairos1",
                        "kairos2"):
            assert f"### {machine} (" in handbook

    def test_driver_parameters_tabulated(self, handbook):
        assert "| `ip` | `10.197.12.11` |" in handbook
        assert "`EMCODriver` (proprietary)" in handbook
        assert "`OPCUADriver` (standardized)" in handbook

    def test_deployment_table(self, handbook):
        assert "`workcell02-opcua-server` | OPC UA server | emco, ur5" \
            in handbook
        assert "*(dedicated)*" in handbook  # the conveyor client

    def test_topic_layout(self, handbook):
        assert "icelab/iceproductionline/workcell02/emco/data/<variable>" \
            in handbook
        assert ("icelab/iceproductionline/workcell02/emco/services"
                "/<service>") in handbook

    def test_variables_tables_complete(self, handbook):
        # spot-check a few variable rows incl. units
        assert "| `actual_X` | Real | axesPositions | - |" in handbook
        assert "| `battery_level` | Real | navigation | - |" in handbook

    def test_services_tables_complete(self, handbook):
        assert "| `move_to` | x: Real, y: Real, z: Real | ok: Boolean |" \
            in handbook

    def test_markdown_tables_well_formed(self, handbook):
        for line in handbook.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|"), line
