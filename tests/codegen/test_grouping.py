"""Client-grouping (bin packing) tests, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import (DEFAULT_CLIENT_CAPACITY, GroupingError,
                           group_machines, grouping_stats,
                           lower_bound_clients)
from repro.isa95.levels import MachineInfo, ServiceSpec, VariableSpec


def machine(name, variables, services, workcell="wc"):
    return MachineInfo(
        name=name, type_name="T", workcell=workcell,
        variables=[VariableSpec(f"{name}_v{i}") for i in range(variables)],
        services=[ServiceSpec(f"{name}_s{i}") for i in range(services)])


ICE_POINTS = {"spea": (3, 5), "emco": (34, 19), "ur5": (99, 4),
              "siemensPlc": (26, 8), "fiam": (12, 3), "qcPc": (13, 2),
              "warehouse": (5, 3), "conveyor": (296, 10),
              "kairos1": (5, 6), "kairos2": (5, 6)}


def ice_machines():
    return [machine(name, v, s) for name, (v, s) in ICE_POINTS.items()]


class TestIceLabGrouping:
    def test_paper_result_four_clients(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        assert len(groups) == 4  # Table I: 4 OPC UA clients

    def test_conveyor_gets_dedicated_oversized_client(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        oversized = [g for g in groups if g.oversized]
        assert len(oversized) == 1
        assert oversized[0].machine_names == ["conveyor"]

    def test_every_machine_assigned_once(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        assigned = [name for g in groups for name in g.machine_names]
        assert sorted(assigned) == sorted(ICE_POINTS)

    def test_group_names_and_indexes(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        assert [g.index for g in groups] == [1, 2, 3, 4]
        assert groups[0].name == "opcua-client-01"

    def test_deterministic(self):
        a = group_machines(ice_machines(), 120)
        b = group_machines(list(reversed(ice_machines())), 120)
        assert [g.machine_names for g in a] == [g.machine_names for g in b]


class TestCapacitySweep:
    def test_huge_capacity_single_client(self):
        groups = group_machines(ice_machines(), 10_000)
        assert len(groups) == 1

    def test_tiny_capacity_one_client_per_machine(self):
        groups = group_machines(ice_machines(), 1)
        assert len(groups) == len(ICE_POINTS)
        assert all(g.oversized for g in groups
                   if g.points > 1)

    def test_client_count_monotone_in_capacity(self):
        machines = ice_machines()
        counts = [len(group_machines(machines, c))
                  for c in (40, 80, 120, 160, 320, 640)]
        assert counts == sorted(counts, reverse=True)

    def test_zero_capacity_rejected(self):
        with pytest.raises(GroupingError):
            group_machines(ice_machines(), 0)
        with pytest.raises(GroupingError):
            lower_bound_clients(ice_machines(), -1)

    @pytest.mark.parametrize("capacity", [0, -1, -120])
    def test_nonpositive_capacity_is_a_clear_valueerror(self, capacity):
        """Regression: capacity <= 0 must raise ValueError with an
        actionable message, never loop or emit degenerate groupings."""
        with pytest.raises(ValueError,
                           match=f"capacity must be positive, got {capacity}"):
            group_machines(ice_machines(), capacity)
        with pytest.raises(ValueError, match="capacity must be positive"):
            group_machines(ice_machines(), capacity, algorithm="best-fit")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(GroupingError, match="unknown grouping algorithm"):
            group_machines(ice_machines(), 120, algorithm="worst-fit")


class TestEdgeCases:
    """Boundary inputs the conformance harness's grouping oracle
    asserts over random corpora — pinned here as named cases."""

    def test_capacity_exactly_met_is_not_oversized(self):
        # 7 variables + 3 services == capacity 10: fits in one client
        groups = group_machines([machine("m", 7, 3)], 10)
        assert len(groups) == 1
        assert groups[0].points == 10
        assert not groups[0].oversized

    def test_two_machines_exactly_filling_share_a_client(self):
        groups = group_machines(
            [machine("a", 6, 0), machine("b", 4, 0)], 10)
        assert len(groups) == 1
        assert groups[0].points == 10

    def test_one_point_over_capacity_is_an_oversized_singleton(self):
        groups = group_machines(
            [machine("big", 11, 0), machine("small", 1, 0)], 10)
        oversized = [g for g in groups if g.oversized]
        assert len(oversized) == 1
        assert oversized[0].machine_names == ["big"]
        assert oversized[0].points == 11
        assert len(oversized[0].machines) == 1

    def test_zero_point_machine_still_assigned(self):
        groups = group_machines(
            [machine("idle", 0, 0), machine("busy", 5, 0)], 10)
        assigned = [name for g in groups for name in g.machine_names]
        assert sorted(assigned) == ["busy", "idle"]

    def test_all_zero_point_machines_fit_one_client(self):
        machines = [machine(f"m{i}", 0, 0) for i in range(5)]
        groups = group_machines(machines, 1)
        assert len(groups) == 1
        assert groups[0].points == 0

    def test_equal_points_tie_broken_by_name(self):
        """FFD must order equal-sized machines deterministically, so
        shuffling the input cannot change the assignment."""
        machines = [machine(name, 5, 0) for name in
                    ("delta", "alpha", "charlie", "bravo")]
        a = group_machines(machines, 10)
        b = group_machines(list(reversed(machines)), 10)
        assert [g.machine_names for g in a] == [g.machine_names for g in b]
        assert [g.machine_names for g in a] == [
            ["alpha", "bravo"], ["charlie", "delta"]]

    def test_indices_sequential_from_one(self):
        groups = group_machines(
            [machine(f"m{i}", 9, 0) for i in range(5)], 10)
        assert [g.index for g in groups] == list(
            range(1, len(groups) + 1))
        assert [g.name for g in groups] == [
            f"opcua-client-{i:02d}" for i in range(1, len(groups) + 1)]


class TestStats:
    def test_stats_fields(self):
        groups = group_machines(ice_machines(), 120)
        stats = grouping_stats(groups)
        assert stats["clients"] == 4
        assert stats["oversized_clients"] == 1
        assert stats["total_points"] == 564
        assert 0 < stats["mean_utilization"] <= 1

    def test_empty_stats(self):
        assert grouping_stats([])["clients"] == 0

    def test_lower_bound(self):
        machines = ice_machines()
        bound = lower_bound_clients(machines, 120)
        assert len(group_machines(machines, 120)) >= bound
        # FFD is within a small constant of optimal for this inventory
        assert len(group_machines(machines, 120)) <= bound + 1


@settings(max_examples=100, deadline=None)
@pytest.mark.parametrize("algorithm", ["first-fit", "best-fit"])
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)),
                min_size=1, max_size=30),
       st.integers(min_value=5, max_value=200))
def test_grouping_invariants(algorithm, sizes, capacity):
    machines = [machine(f"m{i}", v, s) for i, (v, s) in enumerate(sizes)]
    groups = group_machines(machines, capacity, algorithm=algorithm)
    # every machine appears exactly once
    assigned = sorted(name for g in groups for name in g.machine_names)
    assert assigned == sorted(m.name for m in machines)
    # capacity respected for non-oversized groups
    for group in groups:
        if not group.oversized:
            assert group.points <= capacity
        else:
            assert len(group.machines) == 1
            assert group.machines[0].point_count > capacity
    # never worse than one client per machine, never better than bound
    assert len(groups) <= len(machines)
    assert len(groups) >= lower_bound_clients(machines, capacity) - 0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)),
                min_size=1, max_size=30),
       st.integers(min_value=5, max_value=200))
def test_best_fit_never_uses_more_clients_than_first_fit(sizes, capacity):
    machines = [machine(f"m{i}", v, s) for i, (v, s) in enumerate(sizes)]
    first = group_machines(machines, capacity)
    best = group_machines(machines, capacity, algorithm="best-fit")
    assert len(best) <= len(first)
    # and both stay sound against the information-theoretic bound
    assert len(best) >= lower_bound_clients(machines, capacity)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)),
                min_size=1, max_size=30),
       st.integers(min_value=5, max_value=200))
def test_best_fit_deterministic_under_input_order(sizes, capacity):
    machines = [machine(f"m{i}", v, s) for i, (v, s) in enumerate(sizes)]
    a = group_machines(machines, capacity, algorithm="best-fit")
    b = group_machines(list(reversed(machines)), capacity,
                       algorithm="best-fit")
    assert [g.machine_names for g in a] == [g.machine_names for g in b]


class TestBestFit:
    def test_best_fit_never_worse_on_balanced_pairs(self):
        # 42+42, 31+31, 27+27 under capacity 100: a shape where greedy
        # packings are tempted to strand the 27s in a third client
        machines = [machine("a", 42, 0), machine("b", 42, 0),
                    machine("c", 31, 0), machine("d", 31, 0),
                    machine("e", 27, 0), machine("f", 27, 0)]
        first = group_machines(machines, 100)
        best = group_machines(machines, 100, algorithm="best-fit")
        assert len(best) <= len(first)

    def test_best_fit_prefers_tightest_bin(self):
        # capacity 10, sizes 6/5/4: the 4 goes to the 6-bin (residual 4
        # is tighter than the 5-bin's residual 5)
        machines = [machine("x", 6, 0), machine("y", 5, 0),
                    machine("z", 4, 0)]
        best = group_machines(machines, 10, algorithm="best-fit")
        assert [g.machine_names for g in best] == [["x", "z"], ["y"]]

    def test_best_fit_equal_residual_tie_breaks_to_earliest_group(self):
        # two bins with identical residuals: the earlier-created wins
        machines = [machine("a", 6, 0), machine("b", 6, 0),
                    machine("c", 4, 0)]
        best = group_machines(machines, 10, algorithm="best-fit")
        assert [g.machine_names for g in best] == [["a", "c"], ["b"]]

    def test_best_fit_oversized_singletons_preserved(self):
        machines = [machine("big", 15, 0), machine("s1", 4, 0),
                    machine("s2", 4, 0)]
        best = group_machines(machines, 10, algorithm="best-fit")
        oversized = [g for g in best if g.oversized]
        assert len(oversized) == 1
        assert oversized[0].machine_names == ["big"]
        assert len(oversized[0].machines) == 1

    def test_ice_lab_best_fit_matches_paper_client_count(self):
        best = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY,
                              algorithm="best-fit")
        assert len(best) == 4  # equivalent-or-better than Table I
