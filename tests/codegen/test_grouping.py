"""Client-grouping (bin packing) tests, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import (DEFAULT_CLIENT_CAPACITY, GroupingError,
                           group_machines, grouping_stats,
                           lower_bound_clients)
from repro.isa95.levels import MachineInfo, ServiceSpec, VariableSpec


def machine(name, variables, services, workcell="wc"):
    return MachineInfo(
        name=name, type_name="T", workcell=workcell,
        variables=[VariableSpec(f"{name}_v{i}") for i in range(variables)],
        services=[ServiceSpec(f"{name}_s{i}") for i in range(services)])


ICE_POINTS = {"spea": (3, 5), "emco": (34, 19), "ur5": (99, 4),
              "siemensPlc": (26, 8), "fiam": (12, 3), "qcPc": (13, 2),
              "warehouse": (5, 3), "conveyor": (296, 10),
              "kairos1": (5, 6), "kairos2": (5, 6)}


def ice_machines():
    return [machine(name, v, s) for name, (v, s) in ICE_POINTS.items()]


class TestIceLabGrouping:
    def test_paper_result_four_clients(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        assert len(groups) == 4  # Table I: 4 OPC UA clients

    def test_conveyor_gets_dedicated_oversized_client(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        oversized = [g for g in groups if g.oversized]
        assert len(oversized) == 1
        assert oversized[0].machine_names == ["conveyor"]

    def test_every_machine_assigned_once(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        assigned = [name for g in groups for name in g.machine_names]
        assert sorted(assigned) == sorted(ICE_POINTS)

    def test_group_names_and_indexes(self):
        groups = group_machines(ice_machines(), DEFAULT_CLIENT_CAPACITY)
        assert [g.index for g in groups] == [1, 2, 3, 4]
        assert groups[0].name == "opcua-client-01"

    def test_deterministic(self):
        a = group_machines(ice_machines(), 120)
        b = group_machines(list(reversed(ice_machines())), 120)
        assert [g.machine_names for g in a] == [g.machine_names for g in b]


class TestCapacitySweep:
    def test_huge_capacity_single_client(self):
        groups = group_machines(ice_machines(), 10_000)
        assert len(groups) == 1

    def test_tiny_capacity_one_client_per_machine(self):
        groups = group_machines(ice_machines(), 1)
        assert len(groups) == len(ICE_POINTS)
        assert all(g.oversized for g in groups
                   if g.points > 1)

    def test_client_count_monotone_in_capacity(self):
        machines = ice_machines()
        counts = [len(group_machines(machines, c))
                  for c in (40, 80, 120, 160, 320, 640)]
        assert counts == sorted(counts, reverse=True)

    def test_zero_capacity_rejected(self):
        with pytest.raises(GroupingError):
            group_machines(ice_machines(), 0)
        with pytest.raises(GroupingError):
            lower_bound_clients(ice_machines(), -1)


class TestStats:
    def test_stats_fields(self):
        groups = group_machines(ice_machines(), 120)
        stats = grouping_stats(groups)
        assert stats["clients"] == 4
        assert stats["oversized_clients"] == 1
        assert stats["total_points"] == 564
        assert 0 < stats["mean_utilization"] <= 1

    def test_empty_stats(self):
        assert grouping_stats([])["clients"] == 0

    def test_lower_bound(self):
        machines = ice_machines()
        bound = lower_bound_clients(machines, 120)
        assert len(group_machines(machines, 120)) >= bound
        # FFD is within a small constant of optimal for this inventory
        assert len(group_machines(machines, 120)) <= bound + 1


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)),
                min_size=1, max_size=30),
       st.integers(min_value=5, max_value=200))
def test_grouping_invariants(sizes, capacity):
    machines = [machine(f"m{i}", v, s) for i, (v, s) in enumerate(sizes)]
    groups = group_machines(machines, capacity)
    # every machine appears exactly once
    assigned = sorted(name for g in groups for name in g.machine_names)
    assert assigned == sorted(m.name for m in machines)
    # capacity respected for non-oversized groups
    for group in groups:
        if not group.oversized:
            assert group.points <= capacity
        else:
            assert len(group.machines) == 1
            assert group.machines[0].point_count > capacity
    # never worse than one client per machine, never better than bound
    assert len(groups) <= len(machines)
    assert len(groups) >= lower_bound_clients(machines, capacity) - 0
