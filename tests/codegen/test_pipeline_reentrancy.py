"""GenerationPipeline reentrancy: one instance, concurrent runs.

The serving subsystem hands a single pipeline instance to many request
threads, so ``run_on_model`` must hold no per-run mutable state — see
the Reentrancy note in :mod:`repro.codegen.pipeline`.
"""

import threading

from fixtures import EMCO_WORKCELL_SOURCE

from repro.codegen import GenerationPipeline, PipelineOptions
from repro.sysml import load_model


def run_concurrently(count, fn):
    barrier = threading.Barrier(count)
    outcomes = {}

    def call(i):
        barrier.wait(timeout=10)  # maximize overlap
        try:
            outcomes[i] = ("ok", fn(i))
        except Exception as exc:  # noqa: BLE001 - the assertion
            outcomes[i] = ("error", exc)

    threads = [threading.Thread(target=call, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert {kind for kind, _ in outcomes.values()} == {"ok"}, outcomes
    return [outcomes[i][1] for i in range(count)]


def serialized(result):
    """Order-insensitive, content-sensitive view of a result."""
    return (sorted(result.manifests.items()),
            sorted(result.server_configs),
            sorted(result.client_configs),
            result.opcua_server_count,
            result.opcua_client_count)


class TestPipelineReentrancy:
    def test_concurrent_runs_on_shared_pipeline_match_serial_run(self):
        model = load_model(EMCO_WORKCELL_SOURCE)
        pipeline = GenerationPipeline(PipelineOptions())
        expected = serialized(pipeline.run_on_model(model))
        results = run_concurrently(
            8, lambda i: pipeline.run_on_model(model))
        for result in results:
            assert serialized(result) == expected

    def test_concurrent_runs_with_shared_cache(self, tmp_path):
        model = load_model(EMCO_WORKCELL_SOURCE)
        pipeline = GenerationPipeline(
            PipelineOptions(cache_dir=str(tmp_path / "cache")))
        expected = serialized(pipeline.run_on_model(model))  # warm it
        results = run_concurrently(
            6, lambda i: pipeline.run_on_model(model))
        for result in results:
            assert serialized(result) == expected

    def test_concurrent_runs_with_distinct_options(self):
        model = load_model(EMCO_WORKCELL_SOURCE)
        pipelines = [GenerationPipeline(PipelineOptions(
            namespace=f"ns-{i % 2}")) for i in range(4)]
        results = run_concurrently(
            4, lambda i: pipelines[i].run_on_model(model))
        for i, result in enumerate(results):
            assert f"ns-{i % 2}" in next(iter(result.manifests.values()))
