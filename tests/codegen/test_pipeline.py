"""Generation-pipeline tests (step 1 JSON + step 2 YAML) on the ICE lab."""

import json

import pytest

from repro.codegen import PipelineOptions, generate_configuration
from repro.icelab import icelab_model
from repro.sysml.errors import ValidationError
from repro.yamlgen import parse_documents


@pytest.fixture(scope="module")
def model():
    return icelab_model()


@pytest.fixture(scope="module")
def result(model):
    return generate_configuration(
        model, options=PipelineOptions(namespace="icelab"))


class TestHeadlineNumbers:
    """The last row of Table I."""

    def test_six_opcua_servers(self, result):
        assert result.opcua_server_count == 6

    def test_four_opcua_clients(self, result):
        assert result.opcua_client_count == 4

    def test_config_size_hundreds_of_kb(self, result):
        # paper: 697 KB; ours differs in serialization but must be the
        # same order of magnitude
        assert 200 <= result.config_size_kb <= 1500

    def test_generation_time_seconds_not_minutes(self, result):
        assert result.generation_seconds < 30

    def test_ten_machine_configs(self, result):
        assert len(result.machine_configs) == 10

    def test_manifest_count(self, result):
        # 6 servers + 4 clients + 4 historians
        assert len(result.manifests) == 14


class TestMachineConfigs:
    def test_emco_driver_parameters_from_model(self, result):
        config = result.machine_configs["emco"]
        assert config["driver"]["protocol"] == "EMCODriver"
        assert config["driver"]["parameters"]["ip"] == "10.197.12.11"
        assert config["driver"]["parameters"]["ip_port"] == 5557

    def test_variable_node_ids_unique(self, result):
        node_ids = [v["node_id"]
                    for c in result.machine_configs.values()
                    for v in c["variables"]]
        assert len(node_ids) == len(set(node_ids)) == 498

    def test_variable_counts_match_table1(self, result):
        assert len(result.machine_configs["conveyor"]["variables"]) == 296
        assert len(result.machine_configs["ur5"]["variables"]) == 99
        assert len(result.machine_configs["emco"]["methods"]) == 19

    def test_hierarchy_recorded(self, result):
        config = result.machine_configs["emco"]
        assert config["hierarchy"]["enterprise"] == "UniVR"
        assert config["hierarchy"]["site"] == "Verona"
        assert config["workcell"] == "workCell02"

    def test_server_endpoint_per_workcell(self, result):
        assert result.machine_configs["emco"]["opcua_server"]["endpoint"] \
            == "opc.tcp://workcell02:4840"


class TestServerConfigs:
    def test_one_per_nonempty_workcell(self, result):
        assert set(result.server_configs) == {
            f"workCell0{i}" for i in range(1, 7)}

    def test_server_aggregates_workcell_machines(self, result):
        wc02 = result.server_configs["workCell02"]
        assert {m["machine"] for m in wc02["machines"]} == {"emco", "ur5"}

    def test_wc06_has_three_machines(self, result):
        wc06 = result.server_configs["workCell06"]
        assert {m["machine"] for m in wc06["machines"]} == \
            {"conveyor", "kairos1", "kairos2"}


class TestClientAndStorageConfigs:
    def test_pairing(self, result):
        assert len(result.client_configs) == len(result.storage_configs)
        for client, storage in zip(result.client_configs,
                                   result.storage_configs):
            assert storage["paired_client"] == client["client"]
            assert storage["machines"] == [m["machine"]
                                           for m in client["machines"]]

    def test_topics_follow_isa95_layout(self, result):
        client = next(c for c in result.client_configs
                      if any(m["machine"] == "emco"
                             for m in c["machines"]))
        emco = next(m for m in client["machines"]
                    if m["machine"] == "emco")
        assert emco["data_topic"] == \
            "icelab/iceproductionline/workcell02/emco/data"
        topics = [s["topic"] for s in emco["subscriptions"]]
        assert f"{emco['data_topic']}/actual_X" in topics

    def test_every_variable_subscribed_exactly_once(self, result):
        subscriptions = [s["node_id"]
                         for c in result.client_configs
                         for m in c["machines"]
                         for s in m["subscriptions"]]
        assert len(subscriptions) == 498
        assert len(set(subscriptions)) == 498

    def test_every_method_served_exactly_once(self, result):
        methods = [m["node_id"]
                   for c in result.client_configs
                   for machine in c["machines"]
                   for m in machine["methods"]]
        assert len(methods) == 66

    def test_assigned_points_within_capacity_or_oversized(self, result):
        for config in result.client_configs:
            if not config["oversized"]:
                assert config["assigned_points"] <= config["capacity"]


class TestManifests:
    def test_all_manifests_parse_as_yaml(self, result):
        for filename, text in result.manifests.items():
            documents = parse_documents(text)
            assert documents, filename

    def test_configmap_json_roundtrips(self, result):
        manifest = result.manifests["workcell02-opcua-server.yaml"]
        documents = parse_documents(manifest)
        config_map = next(d for d in documents if d["kind"] == "ConfigMap")
        config = json.loads(config_map["data"]["config.json"])
        assert config["workcell"] == "workCell02"

    def test_deployments_have_expected_labels(self, result):
        for filename, text in result.manifests.items():
            for document in parse_documents(text):
                if document["kind"] != "Deployment":
                    continue
                labels = document["metadata"]["labels"]
                assert labels["component"] in (
                    "opcua-server", "opcua-client", "historian")
                assert document["metadata"]["namespace"] == "icelab"

    def test_servers_expose_service_resources(self, result):
        service_docs = [
            d for text in result.manifests.values()
            for d in parse_documents(text) if d["kind"] == "Service"]
        assert len(service_docs) == 6  # one per workcell server


class TestCapacityKnob:
    def test_capacity_changes_client_count(self, model):
        few = generate_configuration(model,
                                     options=PipelineOptions(capacity=600))
        many = generate_configuration(model,
                                      options=PipelineOptions(capacity=40))
        assert few.opcua_client_count < many.opcua_client_count

    def test_validation_can_be_disabled(self, model):
        result = generate_configuration(
            model, options=PipelineOptions(validate=False))
        assert result.opcua_client_count == 4


class TestWriteTo(object):
    def test_files_written(self, result, tmp_path):
        written = result.write_to(tmp_path)
        assert len(written) == (10 + 6 + 4 + 4 + 14)
        machine_file = tmp_path / "intermediate" / "machine-emco.json"
        assert json.loads(machine_file.read_text())["machine"] == "emco"
        manifest = tmp_path / "manifests" / "opcua-client-01.yaml"
        assert parse_documents(manifest.read_text())
