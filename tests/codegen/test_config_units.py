"""Unit tests for the individual step-1 config builders."""

import pytest

from repro.codegen import (client_config, machine_config, storage_config,
                           topic_root, workcell_endpoint,
                           workcell_server_config)
from repro.codegen.grouping import ClientGroup
from repro.isa95.levels import (ArgumentSpec, DriverInfo, FactoryTopology,
                                MachineInfo, ServiceSpec, VariableSpec,
                                WorkcellInfo)


def mini_topology():
    topology = FactoryTopology(enterprise="acme", site="s1", area="Hall A",
                               production_lines=["Line 1"])
    workcell = WorkcellInfo(name="cellX", production_line="Line 1")
    machine = MachineInfo(
        name="mill", type_name="Mill", workcell="cellX",
        variables=[VariableSpec("speed", "Real", category="axes",
                                unit="rpm"),
                   VariableSpec("mode", "String")],
        services=[ServiceSpec("start",
                              inputs=[ArgumentSpec("prog", "String")],
                              outputs=[ArgumentSpec("ok", "Boolean")])],
        driver=DriverInfo(name="d", protocol="MillDriver",
                          parameters={"ip": "1.2.3.4"}))
    workcell.machines.append(machine)
    topology.workcells.append(workcell)
    return topology


class TestWorkcellEndpoint:
    def test_sanitized_dns_name(self):
        assert workcell_endpoint("workCell02") == \
            "opc.tcp://workcell02:4840"

    def test_spaces_become_dashes(self):
        assert workcell_endpoint("Cell A") == "opc.tcp://cell-a:4840"


class TestTopicRoot:
    def test_derived_from_area_and_line(self):
        assert topic_root(mini_topology()) == "hall-a/line-1"

    def test_defaults_when_missing(self):
        empty = FactoryTopology()
        assert topic_root(empty) == "factory/line"


class TestMachineConfig:
    def test_complete_shape(self):
        topology = mini_topology()
        config = machine_config(topology.machine("mill"), topology)
        assert config["machine"] == "mill"
        assert config["hierarchy"]["production_line"] == "Line 1"
        assert config["opcua_server"]["endpoint"] == \
            "opc.tcp://cellx:4840"
        assert config["driver"]["parameters"] == {"ip": "1.2.3.4"}
        assert config["variables"][0] == {
            "name": "speed", "data_type": "Real", "category": "axes",
            "unit": "rpm", "node_id": "ns=2;s=mill/data/speed"}
        method = config["methods"][0]
        assert method["inputs"] == [{"name": "prog",
                                     "data_type": "String"}]

    def test_machine_without_driver(self):
        topology = mini_topology()
        machine = topology.machine("mill")
        machine.driver = None
        config = machine_config(machine, topology)
        assert config["driver"]["protocol"] == ""
        assert config["driver"]["parameters"] == {}


class TestServerConfig:
    def test_aggregation(self):
        topology = mini_topology()
        machine_cfg = machine_config(topology.machine("mill"), topology)
        server = workcell_server_config("cellX", [machine_cfg])
        assert server["server"] == "cellx-opcua-server"
        assert server["port"] == 4840
        assert server["machines"][0]["browse_root"] == "mill"


class TestClientAndStorage:
    def make_group(self, topology):
        group = ClientGroup(index=1, capacity=100)
        group.machines.extend(topology.machines)
        return group

    def test_client_config_topics(self):
        topology = mini_topology()
        config = client_config(self.make_group(topology), topology,
                               broker_url="mqtt://b:1")
        machine = config["machines"][0]
        assert machine["data_topic"] == "hall-a/line-1/cellx/mill/data"
        assert machine["subscriptions"][0]["topic"].endswith("/speed")
        assert machine["methods"][0]["input_count"] == 1
        assert config["broker"]["url"] == "mqtt://b:1"

    def test_storage_config_pairs_with_client(self):
        topology = mini_topology()
        group = self.make_group(topology)
        storage = storage_config(group, topology,
                                 database_url="ts://db:1")
        assert storage["paired_client"] == group.name
        assert storage["machines"] == ["mill"]
        assert storage["expected_series"] == 2
        assert storage["database"]["url"] == "ts://db:1"
