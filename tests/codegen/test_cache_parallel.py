"""Determinism and replay guarantees of the jobs/cache accelerators.

The contract under test (see DESIGN.md, "Artifact cache"): turning on
the worker pool or the artifact cache changes wall-clock time only —
every produced byte stays identical to the plain serial run.
"""

import pytest

from repro.codegen import GenerationPipeline, PipelineOptions
from repro.codegen.pipeline import GenerationResult
from repro.icelab import icelab_model, icelab_topology
from repro.obs import METRICS


@pytest.fixture(scope="module")
def model():
    return icelab_model()


@pytest.fixture(scope="module")
def serial_result(model):
    return GenerationPipeline(PipelineOptions(namespace="icelab",
                                              jobs=1)).run_on_model(model)


def _same_bytes(a, b):
    assert a.manifests == b.manifests
    assert a.machine_configs == b.machine_configs
    assert a.server_configs == b.server_configs
    assert a.client_configs == b.client_configs
    assert a.storage_configs == b.storage_configs
    assert a.config_size_bytes == b.config_size_bytes


class TestParallelDeterminism:
    def test_jobs4_byte_identical_to_serial(self, model, serial_result):
        parallel = GenerationPipeline(
            PipelineOptions(namespace="icelab", jobs=4)
        ).run_on_model(model)
        _same_bytes(serial_result, parallel)

    def test_manifest_insertion_order_preserved(self, model,
                                                serial_result):
        parallel = GenerationPipeline(
            PipelineOptions(namespace="icelab", jobs=4)
        ).run_on_model(model)
        assert (list(parallel.manifests)
                == list(serial_result.manifests))


class TestCacheReplay:
    def test_warm_run_replays_identical_bytes(self, model, serial_result,
                                              tmp_path):
        options = PipelineOptions(namespace="icelab",
                                  cache_dir=str(tmp_path / "cache"))
        cold = GenerationPipeline(options).run_on_model(model)
        _same_bytes(serial_result, cold)

        METRICS.reset()
        warm = GenerationPipeline(options).run_on_model(model)
        _same_bytes(serial_result, warm)
        snap = METRICS.snapshot()
        assert snap["cache.hits"] > 0
        assert snap["cache.misses"] == 0
        # replay means zero template renders
        assert snap["templates.renders"] == 0

    def test_option_change_invalidates_replay(self, model, tmp_path):
        cache_dir = str(tmp_path / "cache")
        GenerationPipeline(PipelineOptions(
            namespace="icelab", cache_dir=cache_dir)).run_on_model(model)
        METRICS.reset()
        other = GenerationPipeline(PipelineOptions(
            namespace="otherns", cache_dir=cache_dir)).run_on_model(model)
        assert METRICS.snapshot()["cache.misses"] > 0
        assert all("namespace: otherns" in text
                   for text in other.manifests.values())

    def test_cache_and_jobs_compose(self, model, serial_result, tmp_path):
        options = PipelineOptions(namespace="icelab", jobs=4,
                                  cache_dir=str(tmp_path / "cache"))
        GenerationPipeline(options).run_on_model(model)
        warm = GenerationPipeline(options).run_on_model(model)
        _same_bytes(serial_result, warm)

    def test_topology_without_fingerprint_still_generates(self, model,
                                                          tmp_path):
        # run_on_topology has no source fingerprint: per-unit caching
        # still applies, the whole-result layer is skipped
        topology = icelab_topology(model)
        options = PipelineOptions(namespace="icelab",
                                  cache_dir=str(tmp_path / "cache"))
        first = GenerationPipeline(options).run_on_topology(topology)
        second = GenerationPipeline(options).run_on_topology(topology)
        _same_bytes(first, second)


class TestWriteToSanitization:
    def test_machine_filenames_are_sanitized(self, tmp_path):
        result = GenerationResult(topology=None)
        result.machine_configs["Emco Mill/3"] = {"machine": "Emco Mill/3"}
        result.machine_configs["ok-name"] = {"machine": "ok-name"}
        written = result.write_to(tmp_path)
        names = sorted(p.name for p in written)
        assert "machine-emco-mill-3.json" in names
        assert "machine-ok-name.json" in names

    def test_written_tree_layout(self, model, serial_result, tmp_path):
        written = serial_result.write_to(tmp_path)
        assert all(p.exists() for p in written)
        assert (tmp_path / "intermediate" / "machine-emco.json").exists()
        assert (tmp_path / "manifests").is_dir()
