"""IncrementalEngine behaviour across the edit taxonomy.

Every test holds the same contract: whatever path the engine takes
(clean, partial, or full fallback), its output must be byte-identical
to a cold pipeline run over the same sources — incrementality buys
time, never different bytes. The per-edit tests additionally pin which
path runs and what the provenance reports.
"""

import copy

import pytest

from repro.codegen import (GenerationPipeline, IncrementalEngine,
                           PipelineOptions)
from repro.icelab.model_gen import icelab_sources
from repro.isa95.levels import VariableSpec
from repro.machines.specs import ICE_LAB_SPECS
from repro.obs import METRICS
from repro.sysml import load_model

OPTIONS = PipelineOptions(namespace="icelab")

#: The ICE-lab source holding the EMCO driver instance (ip 10.197.12.11).
EMCO_IP = "10.197.12.11"


def cold_manifests(sources):
    result = GenerationPipeline(OPTIONS).run_on_model(load_model(*sources))
    return result


def edited_specs(edit):
    specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
    edit({s.name: s for s in specs})
    return specs


def regenerated_ids(result):
    return sorted(artifact for artifact, state in result.provenance.items()
                  if state == "regenerated")


@pytest.fixture()
def engine():
    engine = IncrementalEngine(OPTIONS)
    engine.generate(*icelab_sources())
    return engine


def counters():
    snap = METRICS.snapshot()
    return {name: snap.get(f"incremental.{name}", 0)
            for name in ("partial_runs", "full_runs", "clean_runs")}


class TestColdRun:
    def test_matches_plain_pipeline_byte_for_byte(self):
        engine = IncrementalEngine(OPTIONS)
        result = engine.generate(*icelab_sources())
        cold = cold_manifests(icelab_sources())
        assert result.manifests == cold.manifests
        assert result.machine_configs == cold.machine_configs
        assert result.server_configs == cold.server_configs
        assert result.client_configs == cold.client_configs
        assert result.storage_configs == cold.storage_configs

    def test_cold_provenance_is_all_regenerated(self):
        engine = IncrementalEngine(OPTIONS)
        result = engine.generate(*icelab_sources())
        assert set(result.provenance.values()) == {"regenerated"}
        assert result.summary()["artifacts_regenerated"] == 38


class TestNoopAndCommentEdits:
    def test_identical_sources_reuse_everything(self, engine):
        before = counters()
        result = engine.generate(*icelab_sources())
        assert engine.last_update.clean
        assert set(result.provenance.values()) == {"reused"}
        assert counters()["clean_runs"] == before["clean_runs"] + 1

    def test_comment_only_edit_reuses_everything(self, engine):
        sources = list(icelab_sources())
        sources[0] += "\n// reviewed 2026-08-08\n"
        result = engine.generate(*sources)
        assert engine.last_update.clean
        assert set(result.provenance.values()) == {"reused"}
        assert result.manifests == engine.previous.manifests


class TestDriverParameterEdit:
    """The paper's canonical scenario: one machine's driver IP moves."""

    def edited(self):
        return [s.replace(EMCO_IP, "10.197.12.99") if EMCO_IP in s else s
                for s in icelab_sources()]

    def test_partial_path_regenerates_exactly_the_machine(self, engine):
        before = counters()
        result = engine.generate(*self.edited())
        assert counters()["partial_runs"] == before["partial_runs"] + 1
        assert regenerated_ids(result) == [
            "machine:emco",
            "manifest:workcell02-opcua-server.yaml",
            "server:workCell02",
        ]
        assert result.summary()["artifacts_reused"] == 35

    def test_byte_identical_to_cold_run(self, engine):
        result = engine.generate(*self.edited())
        cold = cold_manifests(self.edited())
        assert result.manifests == cold.manifests
        assert result.machine_configs == cold.machine_configs
        assert result.server_configs == cold.server_configs

    def test_untouched_manifests_are_the_same_objects(self, engine):
        previous = engine.previous
        result = engine.generate(*self.edited())
        assert result.manifests["workcell05-opcua-server.yaml"] \
            is previous.manifests["workcell05-opcua-server.yaml"]
        assert result.machine_configs["ur5"] \
            is previous.machine_configs["ur5"]

    def test_grouping_not_resolved_again(self, engine):
        # an IP change cannot move a machine between clients, so the
        # retained membership is rebuilt, not re-packed
        previous_groups = [g.machine_names for g in engine.previous.groups]
        result = engine.generate(*self.edited())
        assert [g.machine_names for g in result.groups] == previous_groups
        assert all(state == "reused"
                   for artifact, state in result.provenance.items()
                   if artifact.startswith("client:"))


class TestRenameEdit:
    def test_falls_back_to_full_run_and_matches_cold(self, engine):
        before = counters()
        renamed = [s.replace("speaDriverInstance", "speaDriverInstanceB")
                   for s in icelab_sources()]
        result = engine.generate(*renamed)
        assert counters()["full_runs"] == before["full_runs"] + 1
        assert result.manifests == cold_manifests(renamed).manifests


class TestPointCountEdit:
    def test_group_membership_resolves_like_cold(self, engine):
        # +80 points on fiam reshuffles first-fit-decreasing packing;
        # a definition-level edit, so the engine takes the full path —
        # and must land exactly where a cold run lands
        specs = edited_specs(
            lambda by: by["fiam"].categories["Tightening"].extend(
                VariableSpec(f"extra_{i}", "Real") for i in range(80)))
        sources = icelab_sources(specs)
        result = engine.generate(*sources)
        cold = cold_manifests(sources)
        assert [g.machine_names for g in result.groups] \
            == [g.machine_names for g in cold.groups]
        assert result.manifests == cold.manifests


class TestMachineAddRemove:
    def test_removal_drops_the_workcell(self, engine):
        specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS
                 if s.name != "spea"]
        sources = icelab_sources(specs)
        result = engine.generate(*sources)
        assert engine.last_update.full_rebuild
        assert "workcell01-opcua-server.yaml" not in result.manifests
        assert result.manifests == cold_manifests(sources).manifests

    def test_addition_appears_like_cold(self, engine):
        specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
        extra = copy.deepcopy(
            next(s for s in specs if s.name == "conveyor"))
        extra.name = "conveyor2"
        sources = icelab_sources(specs + [extra])
        result = engine.generate(*sources)
        cold = cold_manifests(sources)
        assert "conveyor2" in result.machine_configs
        assert result.manifests == cold.manifests


class TestEngineOptions:
    def test_incremental_false_always_runs_full(self):
        engine = IncrementalEngine(OPTIONS.replace(incremental=False))
        engine.generate(*icelab_sources())
        before = counters()
        engine.generate(*icelab_sources())
        assert counters()["full_runs"] == before["full_runs"] + 1

    def test_legacy_kwargs_still_accepted(self):
        with pytest.deprecated_call():
            engine = IncrementalEngine(namespace="icelab")
        assert engine.options.namespace == "icelab"
