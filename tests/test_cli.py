"""CLI smoke tests (each subcommand runs in-process)."""

import pytest

from repro.cli import main


class TestCli:
    def test_model_to_file(self, tmp_path, capsys):
        out = tmp_path / "icelab.sysml"
        assert main(["model", "--out", str(out)]) == 0
        assert "part ICETopology" in out.read_text()

    def test_validate_builtin(self, capsys):
        assert main(["validate"]) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_validate_file_with_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.sysml"
        bad.write_text("part x : Missing;")
        assert main(["validate", str(bad)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_validate_file_ok(self, tmp_path, capsys):
        good = tmp_path / "good.sysml"
        good.write_text("part def M { attribute a : Real; } part m : M;")
        assert main(["validate", str(good)]) == 0

    def test_generate(self, tmp_path, capsys):
        assert main(["generate", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "opcua_servers: 6" in out
        assert "opcua_clients: 4" in out
        assert (tmp_path / "manifests").exists()

    def test_generate_capacity_knob(self, capsys):
        assert main(["generate", "--capacity", "600"]) == 0
        assert "opcua_clients: 1" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "conveyor" in out
        assert "OPC UA clients: 4" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out

    def test_figures_dot(self, capsys):
        assert main(["figures", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_deploy(self, capsys):
        assert main(["deploy", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "RESULT: OK" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        assert "catch rate" in capsys.readouterr().out

    def test_convert_roundtrip(self, tmp_path, capsys):
        sysml = tmp_path / "m.sysml"
        sysml.write_text("part def M { attribute a : Real; } part m : M;")
        json_path = tmp_path / "m.json"
        assert main(["convert", str(sysml), str(json_path)]) == 0
        back = tmp_path / "back.sysml"
        assert main(["convert", str(json_path), str(back)]) == 0
        assert "part m : M" in back.read_text()

    def test_handbook_to_file(self, tmp_path):
        out = tmp_path / "handbook.md"
        assert main(["handbook", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# ICE Laboratory handbook")
        assert "### conveyor" in text

    def test_verify(self, capsys):
        assert main(["verify", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "consistent" in out

    def test_deploy_prints_kpis(self, capsys):
        assert main(["deploy", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "availability 100%" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
