"""CLI smoke tests (each subcommand runs in-process)."""

import pytest

from repro.cli import main


class TestCli:
    def test_model_to_file(self, tmp_path, capsys):
        out = tmp_path / "icelab.sysml"
        assert main(["model", "--out", str(out)]) == 0
        assert "part ICETopology" in out.read_text()

    def test_validate_builtin(self, capsys):
        assert main(["validate"]) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_validate_file_with_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.sysml"
        bad.write_text("part x : Missing;")
        assert main(["validate", str(bad)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_validate_file_ok(self, tmp_path, capsys):
        good = tmp_path / "good.sysml"
        good.write_text("part def M { attribute a : Real; } part m : M;")
        assert main(["validate", str(good)]) == 0

    def test_generate(self, tmp_path, capsys):
        assert main(["generate", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "opcua_servers: 6" in out
        assert "opcua_clients: 4" in out
        assert (tmp_path / "manifests").exists()

    def test_generate_capacity_knob(self, capsys):
        assert main(["generate", "--capacity", "600"]) == 0
        assert "opcua_clients: 1" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "conveyor" in out
        assert "OPC UA clients: 4" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out

    def test_figures_dot(self, capsys):
        assert main(["figures", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_deploy(self, capsys):
        assert main(["deploy", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "RESULT: OK" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        assert "catch rate" in capsys.readouterr().out

    def test_convert_roundtrip(self, tmp_path, capsys):
        sysml = tmp_path / "m.sysml"
        sysml.write_text("part def M { attribute a : Real; } part m : M;")
        json_path = tmp_path / "m.json"
        assert main(["convert", str(sysml), str(json_path)]) == 0
        back = tmp_path / "back.sysml"
        assert main(["convert", str(json_path), str(back)]) == 0
        assert "part m : M" in back.read_text()

    def test_handbook_to_file(self, tmp_path):
        out = tmp_path / "handbook.md"
        assert main(["handbook", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# ICE Laboratory handbook")
        assert "### conveyor" in text

    def test_verify(self, capsys):
        assert main(["verify", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "consistent" in out

    def test_deploy_prints_kpis(self, capsys):
        assert main(["deploy", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "availability 100%" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestPerfSurface:
    """--jobs / --cache-dir on generate, and the cache subcommand."""

    def test_generate_with_jobs(self, capsys):
        assert main(["generate", "--jobs", "2"]) == 0
        assert "opcua_servers: 6" in capsys.readouterr().out

    def test_generate_jobs_and_cache_match_serial(self, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        fast_dir = tmp_path / "fast"
        assert main(["generate", "--out", str(serial_dir)]) == 0
        assert main(["generate", "--out", str(fast_dir),
                     "--jobs", "4",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        serial_files = sorted(p.relative_to(serial_dir)
                              for p in serial_dir.rglob("*") if p.is_file())
        fast_files = sorted(p.relative_to(fast_dir)
                            for p in fast_dir.rglob("*") if p.is_file())
        assert serial_files == fast_files
        for rel in serial_files:
            assert ((serial_dir / rel).read_bytes()
                    == (fast_dir / rel).read_bytes())

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["generate", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and cache_dir in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_trace_reports_cache_counters(self, tmp_path, capsys):
        assert main(["trace", "--jobs", "2",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "cache/parallel" in out
        assert "cache.misses" in out
        assert "parallel.tasks" in out


class TestServiceSurface:
    """The CLI surface added alongside the serving subsystem."""

    def test_cache_stats_missing_dir_is_friendly(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        assert f"no cache at {missing}" in capsys.readouterr().out
        assert not missing.exists()  # inspection must not create it

    def test_cache_clear_missing_dir_is_friendly(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0
        assert f"no cache at {missing}" in capsys.readouterr().out
        assert not missing.exists()

    def test_cache_clear_empty_dir_reports_nothing_removed(
            self, tmp_path, capsys):
        empty = tmp_path / "cache"
        empty.mkdir()
        assert main(["cache", "clear", "--cache-dir", str(empty)]) == 0
        assert "nothing to remove" in capsys.readouterr().out

    def test_validate_json_ok(self, capsys):
        import json

        assert main(["validate", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["errors"] == 0
        assert document["diagnostics"] == []

    def test_validate_json_front_end_error(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.sysml"
        bad.write_text("part x : Missing;")
        assert main(["validate", "--json", str(bad)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["errors"] == 1
        assert document["front_end_error"]["message"]
        assert document["front_end_error"]["kind"]

    def test_serve_parser_accepts_service_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-inflight", "4",
             "--backpressure", "block", "--block-deadline", "2.5",
             "--rate", "10", "--drain-deadline", "3"])
        assert args.port == 0
        assert args.max_inflight == 4
        assert args.backpressure == "block"
        assert args.func is not None


class TestConformanceSurface:
    """The differential conformance subcommand."""

    def test_list_oracles(self, capsys):
        assert main(["conformance", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in ("roundtrip", "interchange", "cache", "jobs",
                     "serve", "grouping"):
            assert name in out

    def test_small_run_passes_and_writes_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert main(["conformance", "--seeds", "3", "--jobs", "2",
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s) over 3 seeds" in out
        assert "digest:" in out
        document = json.loads(report_path.read_text())
        assert document["schema"] == "repro/conformance-report/1"
        assert document["ok"] is True
        assert document["seeds"] == 3

    def test_digest_stable_across_jobs(self, tmp_path):
        import json

        digests = []
        for jobs in ("1", "3"):
            path = tmp_path / f"report-{jobs}.json"
            assert main(["conformance", "--seeds", "3", "--jobs", jobs,
                         "--oracles", "roundtrip,grouping",
                         "--report", str(path)]) == 0
            digests.append(json.loads(path.read_text())["digest"])
        assert digests[0] == digests[1]

    def test_unknown_oracle_is_a_usage_error(self, capsys):
        assert main(["conformance", "--seeds", "1",
                     "--oracles", "bogus"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_hostile_run(self, capsys):
        assert main(["conformance", "--seeds", "2", "--hostile",
                     "--oracles", "roundtrip"]) == 0
        assert "(hostile)" in capsys.readouterr().out

    def test_list_oracles_marks_chaos_opt_in(self, capsys):
        assert main(["conformance", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out
        assert "opt-in" in out

    def test_chaos_flag_runs_the_chaos_oracle(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "chaos-report.json"
        assert main(["conformance", "--seeds", "1", "--chaos",
                     "--oracles", "grouping",
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "(chaos)" in out
        document = json.loads(report_path.read_text())
        assert document["ok"] is True
        assert document["oracles"] == ["grouping", "chaos"]
