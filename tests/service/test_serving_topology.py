"""The serving tier's dogfood loop: SysML model -> manifests -> cluster.

The sharded tier describes itself the way the paper describes factory
cells — a SysML v2 package — and derives its own Kubernetes manifests
from the same parameters. These tests hold that loop to the repo's own
front end (the model must parse and validate), to the simulated cluster
(the manifests must actually schedule), and to determinism (two
renderings are byte-identical).
"""

import pytest

from repro.fingerprint import ROUTER_RING_SALT
from repro.k8s import Cluster
from repro.service import (DEFAULT_VNODES, HashRing,
                           deploy_serving_topology,
                           serving_topology_manifests,
                           serving_topology_sysml)
from repro.service.topology import (ROUTER_PORT, WORKER_BASE_PORT,
                                    serving_topology_yaml)
from repro.sysml import load_model, validate_model
from repro.yamlgen import parse_documents


class TestSysmlModel:
    def test_model_parses_and_validates_with_our_own_front_end(self):
        model = load_model(serving_topology_sysml(4))
        assert validate_model(model).ok

    def test_model_names_router_and_every_worker(self):
        source = serving_topology_sysml(["alpha", "beta", "gamma"])
        model = load_model(source)
        names = {element.name for element in model.all_elements()
                 if element.name}
        assert {"ServingTier", "ShardRouter", "ConfigWorker",
                "router", "alpha", "beta", "gamma"} <= names

    def test_model_carries_the_ring_parameters(self):
        source = serving_topology_sysml(2, vnodes=64)
        assert "vnodes : Integer = 64" in source
        assert ROUTER_RING_SALT in source
        assert str(ROUTER_PORT) in source

    def test_workers_get_sequential_shards_and_ports(self):
        source = serving_topology_sysml(3)
        for index in range(3):
            assert f":>> shard = {index};" in source
            assert f":>> port = {WORKER_BASE_PORT + index};" in source

    def test_router_connects_to_every_worker(self):
        source = serving_topology_sysml(["a", "b"])
        assert "connect router to a;" in source
        assert "connect router to b;" in source


class TestManifests:
    def test_configmap_comes_first_and_carries_the_ring(self):
        manifests = serving_topology_manifests(3, vnodes=64)
        head = manifests[0]
        assert head["kind"] == "ConfigMap"
        assert head["data"]["ring.salt"] == ROUTER_RING_SALT
        assert head["data"]["ring.vnodes"] == "64"
        assert head["data"]["ring.members"] == \
            ",".join(HashRing(["worker0", "worker1", "worker2"]).members)

    def test_each_worker_is_a_single_replica_deployment(self):
        # stable identities: the ring hashes worker *names*, so the
        # tier is N one-replica Deployments, never one N-replica one
        manifests = serving_topology_manifests(4)
        deployments = [m for m in manifests if m["kind"] == "Deployment"]
        assert len(deployments) == 5  # 4 workers + router
        assert all(m["spec"]["replicas"] == 1 for m in deployments)
        worker_names = {m["metadata"]["name"] for m in deployments
                       if m["metadata"]["labels"].get("role") == "worker"}
        assert worker_names == {f"worker{i}" for i in range(4)}

    def test_every_deployment_gets_a_matching_service(self):
        manifests = serving_topology_manifests(2)
        by_kind = {}
        for manifest in manifests:
            by_kind.setdefault(manifest["kind"], set()).add(
                manifest["metadata"]["name"])
        assert by_kind["Deployment"] == by_kind["Service"]

    def test_rendering_is_deterministic(self):
        assert serving_topology_manifests(4) \
            == serving_topology_manifests(4)
        assert serving_topology_yaml(4) == serving_topology_yaml(4)
        assert serving_topology_sysml(4) == serving_topology_sysml(4)

    def test_yaml_round_trips_through_our_parser(self):
        manifests = serving_topology_manifests(3)
        assert parse_documents(serving_topology_yaml(3)) == manifests

    def test_invalid_worker_specs_are_rejected(self):
        with pytest.raises(ValueError):
            serving_topology_manifests(0)
        with pytest.raises(ValueError):
            serving_topology_manifests([])
        with pytest.raises(ValueError):
            serving_topology_manifests(["dup", "dup"])
        with pytest.raises(ValueError):
            serving_topology_sysml(0)


class TestClusterDeploy:
    def test_topology_schedules_on_the_simulated_cluster(self):
        cluster = Cluster()
        applied = deploy_serving_topology(cluster, 4)
        assert len(applied) == 1 + 2 * 4 + 2  # configmap + per-worker + router
        for name in [f"worker{i}" for i in range(4)] + ["router"]:
            pods = cluster.pods_for(name, "repro-serving")
            assert len(pods) == 1, name

    def test_worker_pods_carry_their_shard_identity(self):
        cluster = Cluster()
        deploy_serving_topology(cluster, 2)
        pods = cluster.pods_for("worker1", "repro-serving")
        assert pods[0].labels["shard"] == "worker1"
