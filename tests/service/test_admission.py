"""Admission-control policies and the per-client rate limiter."""

import threading
import time

import pytest

from repro.obs import METRICS, snapshot_delta
from repro.service import (AdmissionController, AdmissionRejected,
                           AdmissionShed, AdmissionTimeout, POLICY_BLOCK,
                           POLICY_REJECT, POLICY_SHED, RateLimited,
                           RateLimiter, TokenBucket)
from repro.testkit import wait_for_event, wait_until


class TestRejectPolicy:
    def test_admits_up_to_capacity(self):
        ctrl = AdmissionController(2, policy=POLICY_REJECT)
        ctrl.acquire()
        ctrl.acquire()
        assert ctrl.inflight == 2
        with pytest.raises(AdmissionRejected):
            ctrl.acquire()
        ctrl.release()
        ctrl.acquire()  # freed slot is reusable
        assert ctrl.inflight == 2
        ctrl.release()
        ctrl.release()
        assert ctrl.inflight == 0

    def test_rejection_is_immediate(self):
        ctrl = AdmissionController(1, policy=POLICY_REJECT)
        ctrl.acquire()
        started = time.perf_counter()
        with pytest.raises(AdmissionRejected):
            ctrl.acquire()
        assert time.perf_counter() - started < 0.1

    def test_rejected_error_is_retriable(self):
        ctrl = AdmissionController(1, policy=POLICY_REJECT)
        ctrl.acquire()
        try:
            ctrl.acquire()
        except AdmissionRejected as exc:
            assert exc.retriable
            assert exc.code == "rejected"


class TestBlockPolicy:
    def test_blocks_until_slot_frees(self):
        ctrl = AdmissionController(1, policy=POLICY_BLOCK,
                                   block_deadline=5.0)
        ctrl.acquire()
        admitted = threading.Event()

        def blocked():
            ctrl.acquire()
            admitted.set()
            ctrl.release()

        thread = threading.Thread(target=blocked)
        thread.start()
        wait_until(lambda: ctrl.queued, timeout=5.0,
                   message="waiter never queued")
        assert not admitted.is_set()
        ctrl.release()
        wait_for_event(admitted, timeout=5.0,
                       message="blocked waiter never admitted")
        thread.join(5)
        assert ctrl.inflight == 0

    def test_deadline_expiry_raises_timeout(self):
        ctrl = AdmissionController(1, policy=POLICY_BLOCK,
                                   block_deadline=0.1)
        ctrl.acquire()
        started = time.perf_counter()
        with pytest.raises(AdmissionTimeout):
            ctrl.acquire()
        waited = time.perf_counter() - started
        assert 0.08 <= waited < 2.0
        assert ctrl.queued == 0  # the expired waiter withdrew

    def test_deadline_expiry_is_retriable_and_counted(self):
        # a blocked-then-timed-out caller must get a *retriable*
        # rejection (it can come back later) and land in the
        # service.admission_timeouts counter
        ctrl = AdmissionController(1, policy=POLICY_BLOCK,
                                   block_deadline=0.05)
        ctrl.acquire()
        before = METRICS.snapshot()
        with pytest.raises(AdmissionTimeout) as info:
            ctrl.acquire()
        assert info.value.retriable
        assert info.value.code == "deadline-exceeded"
        delta = snapshot_delta(before, METRICS.snapshot())
        assert delta["service.admission_timeouts"] == 1

    def test_per_call_deadline_overrides_default(self):
        ctrl = AdmissionController(1, policy=POLICY_BLOCK,
                                   block_deadline=30.0)
        ctrl.acquire()
        started = time.perf_counter()
        with pytest.raises(AdmissionTimeout):
            ctrl.acquire(deadline=0.05)
        assert time.perf_counter() - started < 2.0

    def test_fifo_handoff(self):
        ctrl = AdmissionController(1, policy=POLICY_BLOCK,
                                   block_deadline=5.0)
        ctrl.acquire()
        order = []
        started = []

        def waiter(i):
            started.append(i)
            ctrl.acquire()
            order.append(i)
            ctrl.release()

        threads = []
        for i in range(3):
            thread = threading.Thread(target=waiter, args=(i,))
            threads.append(thread)
            thread.start()
            # serialize queue entry so FIFO order is observable
            wait_until(lambda: ctrl.queued >= i + 1, timeout=5.0,
                       message=f"waiter {i} never queued")
        ctrl.release()
        for thread in threads:
            thread.join(5)
        assert order == [0, 1, 2]


class TestShedOldestPolicy:
    def test_oldest_waiter_is_shed_for_newcomer(self):
        ctrl = AdmissionController(1, policy=POLICY_SHED, max_queue=1,
                                   block_deadline=5.0)
        ctrl.acquire()
        outcomes = {}

        def waiter(i):
            try:
                ctrl.acquire()
            except AdmissionShed:
                outcomes[i] = "shed"
            else:
                outcomes[i] = "admitted"
                ctrl.release()

        first = threading.Thread(target=waiter, args=(0,))
        first.start()
        wait_until(lambda: ctrl.queued >= 1, timeout=5.0,
                   message="first waiter never queued")
        second = threading.Thread(target=waiter, args=(1,))
        second.start()
        first.join(5)  # shed immediately by the newcomer
        assert outcomes == {0: "shed"}
        ctrl.release()
        second.join(5)
        assert outcomes == {0: "shed", 1: "admitted"}

    def test_shed_error_metadata(self):
        assert AdmissionShed.code == "shed"
        assert AdmissionShed.retriable


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(1, policy="lifo")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_slot_context_manager_releases_on_error(self):
        ctrl = AdmissionController(1)
        with pytest.raises(RuntimeError):
            with ctrl.slot():
                assert ctrl.inflight == 1
                raise RuntimeError("boom")
        assert ctrl.inflight == 0


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0,
                             clock=lambda: clock[0])
        assert bucket.try_consume()
        assert bucket.try_consume()
        assert not bucket.try_consume()  # burst exhausted
        clock[0] = 1.0  # one second -> one token back
        assert bucket.try_consume()
        assert not bucket.try_consume()

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0,
                             clock=lambda: clock[0])
        clock[0] = 100.0
        assert bucket.try_consume(3.0)
        assert not bucket.try_consume()


class TestRateLimiter:
    def test_disabled_by_default(self):
        limiter = RateLimiter()
        for _ in range(1000):
            limiter.check("anyone")  # never raises

    def test_per_client_isolation(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0,
                              clock=lambda: clock[0])
        limiter.check("a")
        with pytest.raises(RateLimited):
            limiter.check("a")
        limiter.check("b")  # a separate bucket

    def test_refill_restores_budget(self):
        clock = [0.0]
        limiter = RateLimiter(rate=2.0, burst=1.0,
                              clock=lambda: clock[0])
        limiter.check("a")
        with pytest.raises(RateLimited):
            limiter.check("a")
        clock[0] = 0.5  # 2 rps -> one token after half a second
        limiter.check("a")

    def test_rate_limited_error_metadata(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0,
                              clock=lambda: clock[0])
        limiter.check("a")
        try:
            limiter.check("a")
        except RateLimited as exc:
            assert exc.retriable
            assert exc.code == "rate-limited"
