"""The configuration service end to end over real HTTP.

Covers the ISSUE acceptance criteria: single-flight collapse of
concurrent identical requests (proven via ``repro.obs`` counters with
a gated pipeline execution, so overlap is deterministic), backpressure
per policy, and graceful drain refusing new work while completing
admitted work.
"""

import json
import threading
import time

import pytest

from fixtures import EMCO_WORKCELL_SOURCE

from repro.codegen import GenerationPipeline, PipelineOptions
from repro.fingerprint import SERVICE_GENERATE_SALT, fingerprint
from repro.obs import METRICS, snapshot_delta
from repro.service import (ConfigurationService, ServiceClient,
                           ServiceError, ServiceHTTPServer, bundle_bytes)
from repro.sysml import load_model
from repro.testkit import wait_until

SOURCES = [EMCO_WORKCELL_SOURCE]


class GatedExecute:
    """Replaces ``service._execute`` so tests control pipeline timing."""

    def __init__(self, service):
        self.entered = threading.Event()
        self.release = threading.Event()
        self._original = service._execute
        service._execute = self

    def __call__(self, model, options, sources=None):
        self.entered.set()
        assert self.release.wait(10), "gate never released"
        return self._original(model, options, sources)


@pytest.fixture
def serve():
    """Factory starting a real ThreadingHTTPServer on an ephemeral port."""
    running = []

    def _start(options=None, **service_kwargs):
        service = ConfigurationService(
            options if options is not None else PipelineOptions(),
            **service_kwargs)
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        running.append((server, thread))
        return server, service

    yield _start
    for server, thread in running:
        server.shutdown()
        server.server_close()
        thread.join(2)


def generate_key(service):
    """The generation single-flight key the service derives for SOURCES."""
    model = load_model(*SOURCES)
    return fingerprint(model.content_fingerprint,
                       service._semantic(service.options),
                       salt=SERVICE_GENERATE_SALT)


class TestGenerateEndpoint:
    def test_bundle_matches_direct_pipeline_run(self, serve):
        server, service = serve()
        with ServiceClient(port=server.port) as client:
            status, headers, body = client.generate_raw(SOURCES)
        assert status == 200
        assert headers["x-repro-singleflight"] == "leader"
        model = load_model(*SOURCES)
        direct = GenerationPipeline(service.options).run_on_model(model)
        assert body == bundle_bytes(direct, model.content_fingerprint,
                                    service.options)
        bundle = json.loads(body)
        assert bundle["manifests"]
        assert bundle["summary"]["opcua_servers"] == 1

    def test_plain_text_body_is_one_source(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            status, _, body = client.request(
                "POST", "/v1/generate",
                body=EMCO_WORKCELL_SOURCE.encode(),
                headers={"Content-Type": "text/plain"})
        assert status == 200
        assert json.loads(body)["manifests"]

    def test_options_override_shapes_output(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            default = client.generate(SOURCES)
            other = client.generate(SOURCES,
                                    options={"namespace": "plant-b"})
        assert default["options"]["namespace"] == "factory"
        assert other["options"]["namespace"] == "plant-b"
        assert default["manifests"] != other["manifests"]
        assert "plant-b" in next(iter(other["manifests"].values()))

    def test_repeat_request_hits_memo_without_execution(self, serve):
        server, _ = serve()
        before = METRICS.snapshot()
        with ServiceClient(port=server.port) as client:
            _, first_headers, first_body = client.generate_raw(SOURCES)
            _, second_headers, second_body = client.generate_raw(SOURCES)
        delta = snapshot_delta(before, METRICS.snapshot())
        assert first_headers["x-repro-singleflight"] == "leader"
        assert second_headers["x-repro-singleflight"] == "memo"
        assert second_body == first_body
        assert delta["service.pipeline_executions"] == 1
        assert delta["service.requests"] == 2
        assert delta["service.memo_hits"] == 1

    def test_invalid_model_maps_to_400(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError) as info:
                client.generate(["part broken : Nowhere;"])
        assert info.value.status == 400
        assert info.value.code == "invalid-model"
        assert not info.value.retriable

    def test_malformed_body_maps_to_400(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            status, _, body = client.request(
                "POST", "/v1/generate", body=b"{not json",
                headers={"Content-Type": "application/json"})
            assert status == 400
            assert json.loads(body)["error"]["code"] == "bad-request"
            with pytest.raises(ServiceError) as info:
                client.generate(SOURCES, options={"jobs": 4})
        assert info.value.status == 400  # execution knobs stay server-side

    def test_unknown_route_is_404(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            status, _, _ = client.request("GET", "/v2/nope")
        assert status == 404


class TestSingleFlightOverHTTP:
    def test_concurrent_identical_requests_execute_once(self, serve):
        """ISSUE acceptance: N identical in-flight POSTs, one execution."""
        count = 6
        server, service = serve(max_inflight=count, policy="block")
        gate = GatedExecute(service)
        before = METRICS.snapshot()
        key = generate_key(service)
        responses = {}

        def post(i):
            with ServiceClient(port=server.port) as client:
                responses[i] = client.generate_raw(SOURCES)

        threads = [threading.Thread(target=post, args=(i,))
                   for i in range(count)]
        for thread in threads:
            thread.start()
        # the leader is inside the gate; wait for every other request
        # to park on the same generation flight, then release
        assert gate.entered.wait(10)
        assert wait_until(
            lambda: service._generate_flight.waiting(key) == count - 1)
        gate.release.set()
        for thread in threads:
            thread.join(10)

        delta = snapshot_delta(before, METRICS.snapshot())
        assert delta["service.requests"] == count
        assert delta["service.pipeline_executions"] == 1
        statuses = [status for status, _, _ in responses.values()]
        assert statuses == [200] * count
        bodies = {body for _, _, body in responses.values()}
        assert len(bodies) == 1  # byte-identical payload for everyone
        roles = sorted(headers["x-repro-singleflight"]
                       for _, headers, _ in responses.values())
        assert roles == ["follower"] * (count - 1) + ["leader"]
        # and the shared payload matches a direct pipeline run
        model = load_model(*SOURCES)
        direct = GenerationPipeline(service.options).run_on_model(model)
        assert bodies == {bundle_bytes(direct, model.content_fingerprint,
                                       service.options)}


class TestIncrementalServing:
    def test_reuse_counters_in_headers(self, serve):
        server, _ = serve()
        edited = [EMCO_WORKCELL_SOURCE.replace("10.197.12.11",
                                               "10.197.12.99")]
        with ServiceClient(port=server.port) as client:
            _, first_headers, _ = client.generate_raw(SOURCES)
            _, second_headers, second_body = client.generate_raw(edited)
        assert first_headers["x-repro-reused"] == "0"
        assert int(first_headers["x-repro-regenerated"]) > 0
        # one driver-IP edit: the warm engine reuses everything except
        # the touched machine, its workcell server and that manifest
        assert int(second_headers["x-repro-reused"]) > 0
        assert second_headers["x-repro-regenerated"] == "3"
        # and the incrementally served bytes match a cold pipeline run
        model = load_model(*edited)
        direct = GenerationPipeline(PipelineOptions()).run_on_model(model)
        assert second_body == bundle_bytes(direct, model.content_fingerprint,
                                           PipelineOptions())

    def test_memo_hit_has_no_reuse_headers(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            client.generate_raw(SOURCES)
            _, headers, _ = client.generate_raw(SOURCES)
        assert headers["x-repro-singleflight"] == "memo"
        assert "x-repro-reused" not in headers

    def test_incremental_off_serves_identical_bytes(self, serve):
        server, _ = serve(PipelineOptions(incremental=False))
        with ServiceClient(port=server.port) as client:
            _, headers, body = client.generate_raw(SOURCES)
        assert "x-repro-reused" not in headers
        model = load_model(*SOURCES)
        direct = GenerationPipeline(
            PipelineOptions(incremental=False)).run_on_model(model)
        assert body == bundle_bytes(direct, model.content_fingerprint,
                                    PipelineOptions(incremental=False))


class TestBackpressureOverHTTP:
    def test_reject_policy_returns_retriable_503_immediately(self, serve):
        server, service = serve(max_inflight=1, policy="reject",
                                memo_entries=0)
        gate = GatedExecute(service)
        holder = threading.Thread(
            target=lambda: ServiceClient(
                port=server.port).generate_raw(SOURCES))
        holder.start()
        assert gate.entered.wait(10)
        with ServiceClient(port=server.port) as client:
            started = time.perf_counter()
            status, headers, body = client.generate_raw(SOURCES)
            elapsed = time.perf_counter() - started
        assert status == 503
        assert elapsed < 1.0
        error = json.loads(body)["error"]
        assert error["code"] == "rejected"
        assert error["retriable"] is True
        assert headers["retry-after"] == "1"
        gate.release.set()
        holder.join(10)

    def test_block_policy_admits_when_slot_frees(self, serve):
        server, service = serve(max_inflight=1, policy="block",
                                block_deadline=10.0, memo_entries=0)
        gate = GatedExecute(service)
        results = {}

        def post(i):
            with ServiceClient(port=server.port) as client:
                results[i] = client.generate_raw(SOURCES)

        holder = threading.Thread(target=post, args=(0,))
        holder.start()
        assert gate.entered.wait(10)
        # distinct options -> distinct flight, so it genuinely queues
        with ServiceClient(port=server.port) as client:
            queued = threading.Thread(
                target=lambda: results.setdefault(
                    1, client.generate_raw(
                        SOURCES, options={"namespace": "queued"})))
            queued.start()
            assert wait_until(lambda: service.admission.queued == 1)
            gate.release.set()
            queued.join(10)
        holder.join(10)
        assert results[0][0] == 200
        assert results[1][0] == 200

    def test_block_policy_honors_deadline(self, serve):
        server, service = serve(max_inflight=1, policy="block",
                                block_deadline=0.2, memo_entries=0)
        gate = GatedExecute(service)
        holder = threading.Thread(
            target=lambda: ServiceClient(
                port=server.port).generate_raw(SOURCES))
        holder.start()
        assert gate.entered.wait(10)
        with ServiceClient(port=server.port) as client:
            started = time.perf_counter()
            status, _, body = client.generate_raw(
                SOURCES, options={"namespace": "late"})
            elapsed = time.perf_counter() - started
        assert status == 503
        assert json.loads(body)["error"]["code"] == "deadline-exceeded"
        assert 0.15 <= elapsed < 5.0
        gate.release.set()
        holder.join(10)

    def test_rate_limit_returns_429(self, serve):
        server, _ = serve(rate=0.001, burst=1.0)
        with ServiceClient(port=server.port,
                           client_id="chatty") as client:
            first, _, _ = client.generate_raw(SOURCES)
            second, headers, body = client.generate_raw(SOURCES)
        assert first == 200
        assert second == 429
        error = json.loads(body)["error"]
        assert error["code"] == "rate-limited"
        assert error["retriable"] is True
        assert headers["retry-after"] == "1"


class TestIntrospectionEndpoints:
    def test_healthz_while_serving(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            status, _, body = client.request("GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "serving"
        assert health["max_inflight"] == 8

    def test_metrics_exports_registry(self, serve):
        server, _ = serve()
        with ServiceClient(port=server.port) as client:
            client.generate(SOURCES)
            metrics = client.metrics()
        assert metrics["service.requests"] >= 1
        assert "cache.hits" in metrics
        assert metrics["service.request_seconds"]["count"] >= 1

    def test_cache_stats_with_and_without_cache(self, serve, tmp_path):
        plain_server, _ = serve()
        with ServiceClient(port=plain_server.port) as client:
            assert client.cache_stats() == {"cache": None}
        cached_server, _ = serve(
            options=PipelineOptions(cache_dir=str(tmp_path / "cache")))
        with ServiceClient(port=cached_server.port) as client:
            client.generate(SOURCES)
            stats = client.cache_stats()
        assert stats["entries"] > 0
        assert str(tmp_path / "cache") in stats["directory"]


class TestGracefulDrain:
    def test_drain_completes_inflight_and_refuses_new(self, serve):
        server, service = serve(max_inflight=4, policy="block",
                                memo_entries=0)
        gate = GatedExecute(service)
        inflight_result = {}

        def post():
            with ServiceClient(port=server.port) as client:
                inflight_result["response"] = client.generate_raw(SOURCES)

        worker = threading.Thread(target=post)
        worker.start()
        assert gate.entered.wait(10)

        drain_box = {}
        drainer = threading.Thread(
            target=lambda: drain_box.setdefault(
                "report", service.drain(deadline=10.0)))
        drainer.start()
        assert wait_until(lambda: not service.lifecycle.serving)

        with ServiceClient(port=server.port) as client:
            status, _, body = client.generate_raw(SOURCES)
            assert status == 503
            assert json.loads(body)["error"]["code"] == "draining"
            health_status, _, health_body = client.request(
                "GET", "/healthz")
        assert health_status == 503
        assert json.loads(health_body)["status"] == "draining"

        gate.release.set()
        worker.join(10)
        drainer.join(10)
        report = drain_box["report"]
        assert report.completed
        assert report.remaining == 0
        assert inflight_result["response"][0] == 200  # admitted work done
        assert service.final_metrics is not None  # flush hook ran

    def test_drain_deadline_reports_unfinished_work(self, serve):
        server, service = serve(memo_entries=0)
        gate = GatedExecute(service)
        worker = threading.Thread(
            target=lambda: ServiceClient(
                port=server.port).generate_raw(SOURCES))
        worker.start()
        assert gate.entered.wait(10)
        report = service.drain(deadline=0.1)
        assert not report.completed
        assert report.remaining == 1
        gate.release.set()
        worker.join(10)
