"""WorkerProcess startup waits: deadline-bounded, scripted-clock tested.

``wait_ready`` used to spin on raw ``time.sleep`` loops; it now runs on
the :mod:`repro.testkit.waiting` helpers with an injectable clock and
sleep, so these tests drive entire 30-second startup timelines in
microseconds of real time and assert the one property the raw loops
could not guarantee: the port-file poll and the health probe draw down
one *shared* deadline.
"""

import pytest

from repro.service.worker import WorkerProcess
from repro.testkit import Deadline, wait_until


class ScriptedClock:
    """A monotonic clock that only advances when something sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0.0
        self.sleeps.append(seconds)
        self.now += seconds


class FakeChild:
    """Stands in for the subprocess: alive unless told otherwise."""

    def __init__(self, returncode=None):
        self.returncode = returncode
        self.stdout = None

    def poll(self):
        return self.returncode


def scripted_worker(tmp_path, clock):
    worker = WorkerProcess("w0", workdir=str(tmp_path),
                           clock=clock, sleep=clock.sleep)
    worker.process = FakeChild()
    return worker


class TestWaitUntilInjection:
    def test_scripted_clock_never_touches_wall_time(self):
        clock = ScriptedClock()
        hits = []

        def late():
            hits.append(clock())
            return clock() >= 1.0

        value = wait_until(late, timeout=5.0, interval=0.5,
                           clock=clock, sleep=clock.sleep)
        assert value is True
        assert clock.sleeps == [0.5, 0.5]
        assert hits == [0.0, 0.5, 1.0]

    def test_shared_deadline_spans_consecutive_waits(self):
        clock = ScriptedClock()
        deadline = Deadline(1.0, clock=clock)
        wait_until(lambda: clock() >= 0.6, deadline=deadline,
                   interval=0.2, sleep=clock.sleep)
        # the second wait inherits only the 0.4s remainder
        with pytest.raises(TimeoutError) as info:
            wait_until(lambda: False, deadline=deadline, interval=0.2,
                       sleep=clock.sleep, message="second phase")
        assert "second phase" in str(info.value)
        assert clock() == pytest.approx(1.0)

    def test_sleep_clamps_to_remaining_budget(self):
        clock = ScriptedClock()
        with pytest.raises(TimeoutError):
            wait_until(lambda: False, timeout=0.25, interval=0.2,
                       clock=clock, sleep=clock.sleep)
        # 0.2 then the 0.05 remainder — never a full interval past expiry
        assert clock.sleeps == [0.2, pytest.approx(0.05)]


class TestWorkerProcessWaits:
    def test_ready_when_port_file_and_health_arrive(self, tmp_path):
        clock = ScriptedClock()
        worker = scripted_worker(tmp_path, clock)

        healthy_after = 0.4

        def port_file_at(path, when):
            if clock() >= when and not path.exists():
                path.write_text("4711")

        real_read = worker._read_port_file

        def read_with_script():
            port_file_at(tmp_path / "w0.port", 0.1)
            return real_read()

        worker._read_port_file = read_with_script
        worker._probe_health = lambda: clock() >= healthy_after
        worker.wait_ready(timeout=30.0)
        assert worker.port == 4711
        # scripted timeline, zero real waiting: a handful of short polls
        assert clock() < 1.0
        assert all(step <= 0.05 for step in clock.sleeps)

    def test_timeout_is_shared_across_both_phases(self, tmp_path):
        # the port file arrives late; the health probe must inherit the
        # *remainder*, not a fresh timeout — total wait stays bounded
        clock = ScriptedClock()
        worker = scripted_worker(tmp_path, clock)
        real_read = WorkerProcess._read_port_file

        def read():
            if clock() >= 9.0 and not (tmp_path / "w0.port").exists():
                (tmp_path / "w0.port").write_text("4711")
            return real_read(worker)

        worker._read_port_file = read
        worker._probe_health = lambda: False
        with pytest.raises(TimeoutError) as info:
            worker.wait_ready(timeout=10.0)
        assert "healthy" in str(info.value)
        assert clock() == pytest.approx(10.0, abs=0.1)

    def test_no_port_file_times_out_at_the_deadline(self, tmp_path):
        clock = ScriptedClock()
        worker = scripted_worker(tmp_path, clock)
        with pytest.raises(TimeoutError) as info:
            worker.wait_ready(timeout=2.0)
        assert "port file" in str(info.value)
        # bounded: the scripted clock stops right at the deadline
        assert clock() == pytest.approx(2.0, abs=0.05)

    def test_child_death_fails_fast_with_captured_output(self, tmp_path):
        clock = ScriptedClock()
        worker = scripted_worker(tmp_path, clock)

        class DeadChild(FakeChild):
            def __init__(self):
                super().__init__(returncode=3)

                class Stdout:
                    def read(self):
                        return "boom: no such namespace"
                self.stdout = Stdout()

        worker.process = DeadChild()
        with pytest.raises(RuntimeError) as info:
            worker.wait_ready(timeout=30.0)
        assert "rc=3" in str(info.value)
        assert "boom: no such namespace" in str(info.value)
        assert clock.sleeps == []  # fails on the first poll, no waiting

    def test_not_started_worker_refuses_to_wait(self, tmp_path):
        worker = WorkerProcess("w1", workdir=str(tmp_path))
        with pytest.raises(RuntimeError):
            worker.wait_ready(timeout=0.1)
