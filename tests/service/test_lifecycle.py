"""Graceful-drain state machine (repro.service.lifecycle)."""

import threading

import pytest

from repro.service import (STATE_DRAINING, STATE_SERVING, STATE_STOPPED,
                           ServiceDraining, ServiceLifecycle)
from repro.testkit import wait_for_event, wait_until


class TestLifecycle:
    def test_initial_state_serves(self):
        lifecycle = ServiceLifecycle()
        assert lifecycle.state == STATE_SERVING
        assert lifecycle.serving
        lifecycle.request_started()
        assert lifecycle.active == 1
        lifecycle.request_finished()
        assert lifecycle.active == 0

    def test_drain_with_no_work_completes_immediately(self):
        lifecycle = ServiceLifecycle()
        report = lifecycle.drain(deadline=1.0)
        assert report.completed
        assert report.remaining == 0
        assert lifecycle.state == STATE_STOPPED

    def test_draining_refuses_new_requests(self):
        lifecycle = ServiceLifecycle()
        lifecycle.drain(deadline=0.1)
        with pytest.raises(ServiceDraining) as info:
            lifecycle.request_started()
        assert info.value.retriable
        assert info.value.code == "draining"

    def test_drain_waits_for_inflight_work(self):
        lifecycle = ServiceLifecycle()
        lifecycle.request_started()
        finished = threading.Event()
        report_box = {}

        def drainer():
            report_box["report"] = lifecycle.drain(deadline=5.0)
            finished.set()

        thread = threading.Thread(target=drainer)
        thread.start()
        wait_until(lambda: lifecycle.state == STATE_DRAINING,
                   timeout=5.0, message="drain never started")
        assert not finished.is_set()  # still waiting on our request
        lifecycle.request_finished()
        wait_for_event(finished, timeout=5.0,
                       message="drain never completed")
        thread.join(5)
        report = report_box["report"]
        assert report.completed
        assert report.remaining == 0

    def test_drain_deadline_reports_leftover_work(self):
        lifecycle = ServiceLifecycle()
        lifecycle.request_started()
        lifecycle.request_started()
        report = lifecycle.drain(deadline=0.1)
        assert not report.completed
        assert report.remaining == 2
        assert report.waited_seconds >= 0.08
        assert lifecycle.state == STATE_STOPPED

    def test_flush_hooks_run_once_even_on_deadline_expiry(self):
        lifecycle = ServiceLifecycle()
        flushed = []
        lifecycle.register_flush(lambda: flushed.append("metrics"))
        lifecycle.register_flush(lambda: flushed.append("cache"))
        lifecycle.request_started()
        report = lifecycle.drain(deadline=0.05)
        assert not report.completed
        assert flushed == ["metrics", "cache"]
        assert report.flushed == 2

    def test_broken_flush_hook_does_not_wedge_drain(self):
        lifecycle = ServiceLifecycle()
        flushed = []

        def broken():
            raise RuntimeError("flush failed")

        lifecycle.register_flush(broken)
        lifecycle.register_flush(lambda: flushed.append("ok"))
        report = lifecycle.drain(deadline=0.5)
        assert report.completed
        assert flushed == ["ok"]
        assert report.flushed == 2

    def test_drain_is_idempotent(self):
        lifecycle = ServiceLifecycle()
        first = lifecycle.drain(deadline=0.5)
        second = lifecycle.drain(deadline=0.5)
        assert second is first

    def test_report_summary_shape(self):
        lifecycle = ServiceLifecycle()
        report = lifecycle.drain(deadline=0.1)
        summary = report.summary()
        assert summary["completed"] is True
        assert set(summary) == {"completed", "waited_seconds",
                                "remaining", "flushed"}

    def test_report_round_trips_through_summary_json(self):
        # the sharded supervisor ships worker reports across process
        # boundaries as --drain-report-file JSON; from_summary is the
        # receiving end and must invert summary() exactly
        import json

        from repro.service.lifecycle import DrainReport

        lifecycle = ServiceLifecycle()
        lifecycle.register_flush(lambda: None)
        lifecycle.request_started()
        report = lifecycle.drain(deadline=0.05)
        wire = json.loads(json.dumps(report.summary()))
        clone = DrainReport.from_summary(wire)
        assert clone.completed == report.completed
        assert clone.remaining == report.remaining
        assert clone.flushed == report.flushed
        assert clone.waited_seconds == pytest.approx(
            report.waited_seconds, abs=1e-3)
        assert clone.summary() == report.summary()


class TestDeflakePolicy:
    def test_no_raw_sleeps_in_the_service_suite(self):
        # timing-sensitive service tests must synchronize on events or
        # poll with testkit.wait_until; a bare time.sleep is a latent
        # flake (too short on a loaded CI box, wasted wall-clock
        # otherwise), so the suite bans it outright — and the serving
        # tier itself is held to the same bar: every wait in
        # src/repro/service goes through the deadline helpers so it is
        # bounded and scripted-clock testable
        import repro.service
        from pathlib import Path

        banned = "time." + "sleep("  # split so this file passes its own scan
        scanned = sorted(Path(__file__).parent.glob("test_*.py"))
        scanned += sorted(Path(repro.service.__file__).parent.glob("*.py"))
        offenders = []
        for module in scanned:
            for number, line in enumerate(
                    module.read_text().splitlines(), start=1):
                if banned in line.split("#")[0]:
                    offenders.append(f"{module.name}:{number}")
        assert not offenders, (
            "raw time.sleep in service tests or the serving tier (use "
            f"wait_until / Deadline from repro.testkit): {offenders}")
