"""Client-side resilience against an injected-fault service.

A process-global fault plan (the HTTP handler threads cannot see a
context-local one) makes the real server return 503s at the
``service.request`` site; the client must surface them as *typed*
retriable errors, ride through them with a :class:`RetryPolicy`, and
trip a :class:`CircuitBreaker` when they persist.
"""

import threading

import pytest

from fixtures import EMCO_WORKCELL_SOURCE

from repro.codegen import PipelineOptions
from repro.faults import FaultPlan, FaultSpec, install_plan, uninstall_plan
from repro.obs import METRICS, snapshot_delta
from repro.resilience import CircuitBreaker, CircuitOpen, RetryPolicy
from repro.service import (ConfigurationService, RetriableServiceError,
                           ServiceClient, ServiceHTTPServer)

SOURCES = [EMCO_WORKCELL_SOURCE]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    uninstall_plan()


@pytest.fixture
def serve():
    running = []

    def _start(**service_kwargs):
        service = ConfigurationService(PipelineOptions(), **service_kwargs)
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        running.append((server, thread))
        return server, service

    yield _start
    for server, thread in running:
        server.shutdown()
        server.server_close()
        thread.join(2)


def _unavailable_plan(max_injections, retry_after=0.25):
    return FaultPlan(seed=0, specs=(
        FaultSpec("service.request", "unavailable", probability=1.0,
                  max_injections=max_injections,
                  retry_after=retry_after),))


class TestTypedErrors:
    def test_injected_503_raises_retriable_with_hint(self, serve):
        server, _ = serve()
        install_plan(_unavailable_plan(max_injections=1))
        with ServiceClient(port=server.port) as client:
            with pytest.raises(RetriableServiceError) as info:
                client.generate(SOURCES)
            assert info.value.status == 503
            assert info.value.retriable
            assert info.value.code == "injected-unavailable"
            assert info.value.retry_after == pytest.approx(0.25)
            # the injection budget is spent: the service recovered
            assert client.generate(SOURCES)["manifests"]


class TestClientRetry:
    def test_retry_policy_rides_through_injected_503s(self, serve):
        server, _ = serve()
        install_plan(_unavailable_plan(max_injections=2,
                                       retry_after=0.01))
        before = METRICS.snapshot()
        policy = RetryPolicy(max_attempts=4, base_delay=0.01,
                             jitter=0.0, seed=0)
        with ServiceClient(port=server.port, retry=policy) as client:
            bundle = client.generate(SOURCES)
        assert bundle["manifests"]
        delta = snapshot_delta(before, METRICS.snapshot())
        assert delta["resilience.retries"] == 2
        assert delta["faults.injected.unavailable"] == 2


class TestClientBreaker:
    def test_persistent_503s_trip_the_breaker(self, serve):
        server, _ = serve()
        install_plan(_unavailable_plan(max_injections=None,
                                       retry_after=0.0))
        breaker = CircuitBreaker("client", failure_threshold=2,
                                 reset_timeout=60.0)
        before = METRICS.snapshot()
        with ServiceClient(port=server.port, breaker=breaker) as client:
            for _ in range(2):
                with pytest.raises(RetriableServiceError):
                    client.generate(SOURCES)
            assert breaker.state == "open"
            with pytest.raises(CircuitOpen) as info:
                client.generate(SOURCES)
        assert info.value.retriable
        delta = snapshot_delta(before, METRICS.snapshot())
        # only the two pre-trip calls reached the server; the third
        # was rejected client-side without a round trip
        assert delta["faults.injected.unavailable"] == 2
        assert delta["breaker.trips"] == 1
        assert delta["breaker.open_rejections"] == 1
