"""The consistent-hash ring contract, property-tested.

The router's determinism and minimal-remap guarantees all reduce to
three ring properties, each checked here with hypothesis:

* **balance** — at the default 128 vnodes, no member owns more than
  ~2x its uniform share of a large key population;
* **minimal remap** — removing a member moves *only* that member's
  keys (exactly, not probabilistically), and adding a member moves
  keys *only onto* the new member, roughly ``1/(N+1)`` of them;
* **stability** — assignment is a pure function of the member set:
  ring construction order, pickling (process restarts) and repeated
  builds never change an assignment.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import DEFAULT_VNODES, HashRing, RingEmpty

#: A fixed deterministic key population, large enough that per-member
#: shares concentrate near the ring-arc shares the vnodes define.
KEYS = [f"request-key-{i}" for i in range(1200)]

member_names = st.sets(
    st.sampled_from([f"worker{i}" for i in range(16)]),
    min_size=2, max_size=8)


class TestBalance:
    @given(members=member_names)
    @settings(max_examples=40, deadline=None)
    def test_spread_within_2x_of_uniform(self, members):
        ring = HashRing(members, vnodes=DEFAULT_VNODES)
        counts = ring.spread(KEYS)
        uniform = len(KEYS) / len(members)
        assert max(counts.values()) <= 2.0 * uniform, counts
        assert min(counts.values()) > 0, counts

    def test_low_vnode_rings_are_legal_but_unbalanced(self):
        # the 2x bound is a property of DEFAULT_VNODES, not of the
        # data structure; a 1-vnode ring still assigns every key
        ring = HashRing(["a", "b", "c"], vnodes=1)
        counts = ring.spread(KEYS)
        assert sum(counts.values()) == len(KEYS)


class TestMinimalRemap:
    @given(members=member_names, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_leave_moves_only_the_removed_members_keys(self, members,
                                                       data):
        ring = HashRing(members)
        removed = data.draw(st.sampled_from(sorted(members)))
        shrunk = ring.without_member(removed)
        for key in KEYS:
            before = ring.assign(key)
            after = shrunk.assign(key)
            if before != removed:
                # exact: survivors keep every key they owned
                assert after == before
            else:
                assert after != removed

    @given(members=member_names, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_join_moves_keys_only_onto_the_new_member(self, members,
                                                      data):
        joiner = data.draw(st.sampled_from(
            [f"joiner{i}" for i in range(4)]))
        ring = HashRing(members)
        grown = ring.with_member(joiner)
        moved = 0
        for key in KEYS:
            before = ring.assign(key)
            after = grown.assign(key)
            if after != before:
                # exact: a reassigned key lands on the joiner, never
                # on another survivor
                assert after == joiner
                moved += 1
        # ~1/(N+1) of the keyspace, with generous concentration slack
        expected = len(KEYS) / (len(members) + 1)
        assert moved <= 2.0 * expected, (moved, expected)

    def test_join_then_leave_is_identity(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.with_member("d").without_member("d") == ring
        restored = ring.with_member("d").without_member("d")
        assert [restored.assign(k) for k in KEYS[:100]] \
            == [ring.assign(k) for k in KEYS[:100]]


class TestStability:
    @given(members=member_names)
    @settings(max_examples=25, deadline=None)
    def test_member_order_never_matters(self, members):
        ordered = HashRing(sorted(members))
        reversed_ = HashRing(sorted(members, reverse=True))
        assert ordered == reversed_
        assert [ordered.assign(k) for k in KEYS[:200]] \
            == [reversed_.assign(k) for k in KEYS[:200]]

    @given(members=member_names)
    @settings(max_examples=25, deadline=None)
    def test_pickle_roundtrip_preserves_every_assignment(self, members):
        ring = HashRing(members)
        clone = pickle.loads(pickle.dumps(ring))
        assert clone == ring
        assert [clone.assign(k) for k in KEYS[:200]] \
            == [ring.assign(k) for k in KEYS[:200]]

    def test_restrict_matches_repeated_removal(self):
        ring = HashRing(["a", "b", "c", "d"])
        assert ring.restrict({"a", "c"}) \
            == ring.without_member("b").without_member("d")

    def test_duplicate_members_collapse(self):
        assert HashRing(["a", "a", "b"]) == HashRing(["a", "b"])


class TestEdges:
    def test_empty_ring_raises_typed_error(self):
        with pytest.raises(RingEmpty):
            HashRing([]).assign("anything")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_single_member_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.assign(k) == "only" for k in KEYS[:50])

    def test_spread_zero_fills_idle_members(self):
        ring = HashRing(["a", "b"])
        counts = ring.spread([])
        assert counts == {"a": 0, "b": 0}
