"""The sharded serving tier: routing, failover, probes, aggregation.

Uses in-process :class:`LocalWorker` shards for everything except the
exact-sum metric aggregation tests — local workers share one process
registry, so cross-shard sums are only provably exact with real
``repro serve`` child processes (:class:`WorkerProcess`).
"""

import socket
import threading

import pytest

from fixtures import EMCO_WORKCELL_SOURCE

from repro.codegen import PipelineOptions
from repro.faults import FaultPlan, FaultSpec
from repro.fingerprint import SERVICE_GENERATE_SALT, fingerprint
from repro.obs import METRICS, aggregate_snapshots, snapshot_delta
from repro.service import (LocalWorker, RetriableServiceError,
                           RouterHTTPServer, RouterService, ServiceClient,
                           WorkerEndpoint, WorkerProcess)
from repro.sysml import load_model
from repro.testkit import wait_until

SOURCES = [EMCO_WORKCELL_SOURCE]


def source_variant(i: int) -> list[str]:
    """Distinct sources (distinct routing keys), same semantics."""
    return [EMCO_WORKCELL_SOURCE + f"\n// variant {i}\n"]


@pytest.fixture
def shards():
    """Factory: N LocalWorkers behind a RouterService."""
    started = []

    def _start(count=3, options=None, **router_kwargs):
        options = options if options is not None else PipelineOptions()
        workers = [LocalWorker(f"shard{i}", options).start()
                   for i in range(count)]
        router = RouterService(workers, options, **router_kwargs)
        started.append((router, workers))
        return router, workers

    yield _start
    for router, workers in started:
        router.close()
        for worker in workers:
            worker.close()


def dead_endpoint(name: str) -> WorkerEndpoint:
    """An endpoint nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return WorkerEndpoint(name, "127.0.0.1", port)


class TestRoutingKey:
    def test_router_key_equals_worker_singleflight_key(self, shards):
        """The affinity contract: the router's parse-free key must be
        byte-for-byte the key the worker derives after parsing."""
        router, workers = shards(count=2)
        service = workers[0].service
        model = load_model(*SOURCES)
        worker_key = fingerprint(model.content_fingerprint,
                                 service._semantic(service.options),
                                 salt=SERVICE_GENERATE_SALT)
        assert router.routing_key(SOURCES) == worker_key

    def test_semantic_overrides_change_the_key(self, shards):
        router, _ = shards(count=2)
        assert router.routing_key(SOURCES) \
            != router.routing_key(SOURCES, {"namespace": "other"})

    def test_unknown_override_raises_bad_request(self, shards):
        from repro.service import BadRequest
        router, _ = shards(count=2)
        with pytest.raises(BadRequest):
            router.routing_key(SOURCES, {"jobs": 4})


class TestDispatch:
    def test_routed_bytes_equal_direct_bytes(self, shards):
        router, workers = shards(count=3)
        direct, _ = workers[0].service.generate(SOURCES)
        status, headers, payload, worker = router.dispatch(SOURCES)
        assert status == 200
        assert payload == direct
        assert worker in router.worker_names

    def test_repeats_stick_to_one_shard_and_hit_its_memo(self, shards):
        router, _ = shards(count=3)
        _, _, first, worker_a = router.dispatch(SOURCES)
        _, headers, second, worker_b = router.dispatch(SOURCES)
        assert worker_a == worker_b
        assert second == first
        assert headers.get("x-repro-singleflight") == "memo"

    def test_one_worker_and_three_workers_serve_identical_bytes(
            self, shards):
        router_one, _ = shards(count=1)
        router_three, _ = shards(count=3)
        _, _, one, _ = router_one.dispatch(SOURCES)
        _, _, three, _ = router_three.dispatch(SOURCES)
        assert one == three

    def test_distinct_requests_spread_over_shards(self, shards):
        router, _ = shards(count=3)
        owners = {router.assign(source_variant(i)) for i in range(40)}
        assert len(owners) > 1


class TestFailover:
    def test_dead_owner_fails_over_byte_identically(self, shards):
        router, workers = shards(count=3)
        _, _, reference, owner = router.dispatch(SOURCES)
        next(w for w in workers if w.name == owner).stop()
        status, _, payload, survivor = router.dispatch(SOURCES)
        assert status == 200
        assert payload == reference
        assert survivor != owner
        assert owner not in router.healthy_workers()

    def test_all_workers_down_is_a_typed_retriable_error(self, shards):
        router, workers = shards(count=2)
        for worker in workers:
            worker.stop()
        with pytest.raises(RetriableServiceError) as excinfo:
            router.dispatch(SOURCES)
        assert excinfo.value.code == "no-workers"
        assert excinfo.value.retriable

    def test_injected_crash_at_dispatch_fails_over(self, shards):
        """Regression for the ``router.dispatch`` chaos site: a crash
        injected on the first forward must be absorbed by failover,
        and the payload must match the fault-free bytes."""
        router, workers = shards(count=2)
        _, _, reference, _ = router.dispatch(SOURCES)
        for name in router.worker_names:
            router.mark_up(name)
        before = METRICS.snapshot()
        plan = FaultPlan(seed=0, specs=(
            FaultSpec("router.dispatch", "crash", probability=1.0,
                      max_injections=1),))
        with plan.activated():
            status, _, payload, _ = router.dispatch(SOURCES)
        assert status == 200
        assert payload == reference
        delta = snapshot_delta(before, METRICS.snapshot())
        assert delta.get("router.failovers") == 1

    def test_failover_deadline_with_scripted_clock(self):
        """Regression: the failover loop is bounded by
        ``dispatch_deadline`` on the injected clock — a router facing
        only dead workers gives up with a typed error instead of
        cycling forever."""
        ticks = iter([0.0, 100.0, 100.0, 100.0])
        router = RouterService(
            [dead_endpoint("dead-a"), dead_endpoint("dead-b"),
             dead_endpoint("dead-c")],
            dispatch_deadline=5.0, clock=lambda: next(ticks))
        with pytest.raises(RetriableServiceError) as excinfo:
            router.dispatch(SOURCES)
        assert excinfo.value.code == "dispatch-deadline"
        assert excinfo.value.retriable


class TestProbes:
    def test_death_needs_consecutive_probe_failures(self, shards):
        router, workers = shards(count=2, failure_threshold=3)
        workers[0].stop()
        router.probe_once()
        router.probe_once()
        assert workers[0].name in router.healthy_workers()
        router.probe_once()
        assert workers[0].name not in router.healthy_workers()
        assert workers[1].name in router.healthy_workers()

    def test_rejoin_on_first_successful_probe(self, shards):
        router, workers = shards(count=2)
        router.mark_down(workers[0].name)
        assert workers[0].name not in router.healthy_workers()
        router.probe_once()  # the worker never actually died
        assert workers[0].name in router.healthy_workers()

    def test_rebalancing_is_deterministic(self, shards):
        """Every router observing the same healthy set must compute
        the same assignment — mark_down/mark_up round-trips exactly."""
        router, workers = shards(count=3)
        keys = [router.routing_key(source_variant(i)) for i in range(60)]
        with router._lock:
            before = [router._healthy_ring.assign(k) for k in keys]
        router.mark_down(workers[1].name)
        router.mark_up(workers[1].name)
        with router._lock:
            after = [router._healthy_ring.assign(k) for k in keys]
        assert after == before

    def test_probe_thread_detects_death(self, shards):
        router, workers = shards(count=2, probe_interval=0.05,
                                 failure_threshold=2)
        router.start_probes()
        try:
            workers[1].stop()
            wait_until(
                lambda: workers[1].name not in router.healthy_workers(),
                timeout=5.0,
                message="prober never marked the dead worker down")
        finally:
            router.stop_probes()


class TestDrain:
    def test_topology_drain_reports_every_worker(self, shards):
        router, workers = shards(count=3)
        router.dispatch(SOURCES)
        report = router.drain(5.0)
        assert set(report.workers) == {w.name for w in workers}
        assert all(worker_report is not None and worker_report.completed
                   for worker_report in report.workers.values())
        assert report.router.completed
        assert report.completed

    def test_crashed_worker_fails_the_topology_drain(self, shards):
        router, workers = shards(count=2)
        router.dispatch(SOURCES)
        workers[0].stop()  # crash: no drain report will exist
        report = router.drain(5.0)
        assert report.workers[workers[0].name] is None
        assert not report.completed
        summary = report.summary()
        assert summary["workers"][workers[0].name] is None
        assert summary["completed"] is False


class TestHTTPFrontEnd:
    @pytest.fixture
    def front(self, shards):
        router, workers = shards(count=3)
        server = RouterHTTPServer(("127.0.0.1", 0), router)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        yield server, router, workers
        server.shutdown()
        server.server_close()
        thread.join(2)

    def test_response_names_the_serving_shard(self, front):
        server, router, workers = front
        with ServiceClient(server.port) as client:
            status, headers, body = client.generate_raw(SOURCES)
        assert status == 200
        assert headers.get("x-repro-worker") in router.worker_names
        direct, _ = workers[0].service.generate(SOURCES)
        assert body == direct

    def test_workers_endpoint_reports_health(self, front):
        server, router, workers = front
        with ServiceClient(server.port) as client:
            _, _, body = client.request("GET", "/workers")
            import json
            listed = json.loads(body)["workers"]
        assert listed == {w.name: True for w in workers}

    def test_healthz_degrades_with_no_healthy_workers(self, front):
        server, router, workers = front
        with ServiceClient(server.port) as client:
            assert client.request("GET", "/healthz")[0] == 200
            for worker in workers:
                router.mark_down(worker.name)
            assert client.request("GET", "/healthz")[0] == 503

    def test_bad_request_does_not_touch_workers(self, front):
        server, router, _ = front
        before = METRICS.snapshot()
        with ServiceClient(server.port) as client:
            status, _, _ = client.request(
                "POST", "/v1/generate", body=b"",
                headers={"Content-Type": "text/plain"})
        assert status == 400
        delta = snapshot_delta(before, METRICS.snapshot())
        assert "router.forwarded" not in delta


class TestAggregation:
    """Cross-shard ``/metrics`` and ``/cache/stats`` semantics.

    Synthetic-snapshot tests pin the arithmetic exactly; the
    subprocess test in :class:`TestProcessWorkers` proves the sums
    over real per-process registries.
    """

    def test_counters_and_gauges_sum_exactly(self):
        merged = aggregate_snapshots([
            {"service.requests": 3, "service.active": 1.5},
            {"service.requests": 4, "service.active": 0.5},
            {"service.requests": 5},
        ])
        assert merged["service.requests"] == 12
        assert merged["service.active"] == 2.0

    def test_histograms_merge_count_weighted(self):
        merged = aggregate_snapshots([
            {"lat": {"count": 1, "mean": 1.0, "p50": 1.0, "p95": 1.0,
                     "max": 1.0}},
            {"lat": {"count": 3, "mean": 2.0, "p50": 2.0, "p95": 3.0,
                     "max": 4.0}},
        ])
        lat = merged["lat"]
        assert lat["count"] == 4
        assert lat["mean"] == pytest.approx((1.0 + 3 * 2.0) / 4)
        assert lat["p50"] == pytest.approx((1.0 + 3 * 2.0) / 4)
        assert lat["p95"] == pytest.approx((1.0 + 3 * 3.0) / 4)
        assert lat["max"] == 4.0

    def test_empty_histograms_do_not_dilute(self):
        merged = aggregate_snapshots([
            {"lat": {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                     "max": 0.0}},
            {"lat": {"count": 2, "mean": 5.0, "p50": 5.0, "p95": 6.0,
                     "max": 6.0}},
        ])
        assert merged["lat"]["mean"] == pytest.approx(5.0)
        assert merged["lat"]["p95"] == pytest.approx(6.0)

    def test_missing_names_contribute_where_present(self):
        merged = aggregate_snapshots([{"a": 1}, {"b": 2}])
        assert merged == {"a": 1, "b": 2}

    def test_snapshot_delta_counts_each_request_once_across_shards(
            self, shards):
        """Concurrent requests to *different* shards must appear in a
        registry delta exactly once each — the shared in-process
        registry is still additive, never double-counting."""
        router, _ = shards(count=3)
        variants = []
        seen_owners = set()
        for i in range(60):
            sources = source_variant(i)
            owner = router.assign(sources)
            if owner not in seen_owners:
                seen_owners.add(owner)
                variants.append(sources)
            if len(variants) == 2:
                break
        assert len(variants) == 2, "could not find two distinct shards"
        before = METRICS.snapshot()
        threads = [threading.Thread(target=router.dispatch, args=(v,))
                   for v in variants]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        delta = snapshot_delta(before, METRICS.snapshot())
        assert delta.get("service.requests") == 2
        assert delta.get("service.responses") == 2
        assert delta.get("router.forwarded") == 2


class TestProcessWorkers:
    """Exact cross-process aggregation, against real ``repro serve``
    children (each owns its registry, so sums are provable)."""

    @pytest.fixture(scope="class")
    def process_tier(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("shards")
        serve_args = ["--namespace", "proc",
                      "--cache-dir", str(tmp / "cache")]
        workers = [WorkerProcess(f"proc{i}", serve_args=serve_args,
                                 workdir=str(tmp))
                   for i in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.wait_ready(60.0)
        router = RouterService(
            workers, PipelineOptions(namespace="proc",
                                     cache_dir=str(tmp / "cache")))
        yield router, workers
        router.close()
        for worker in workers:
            worker.close()

    def test_fleet_metrics_sum_exactly_and_keep_percentiles(
            self, process_tier):
        router, workers = process_tier
        sent = 0
        owners = set()
        for i in range(8):
            status, _, _, owner = router.dispatch(source_variant(i))
            assert status == 200
            sent += 1
            owners.add(owner)
        assert owners == set(router.worker_names)  # both shards worked
        merged = router.metrics_snapshot()
        assert merged["service.requests"] == sent
        assert merged["service.responses"] == sent
        latency = merged["service.request_seconds"]
        assert latency["count"] == sent
        assert latency["p50"] > 0
        assert latency["p95"] >= latency["p50"]
        assert latency["max"] >= latency["p95"]

    def test_cache_stats_share_the_store_and_sum_counters(
            self, process_tier):
        router, workers = process_tier
        stats = router.cache_stats()
        combined = stats["combined"]
        per_worker = [s for s in stats["workers"].values()
                      if isinstance(s, dict) and "hits" in s]
        assert len(per_worker) == len(workers)
        directories = {s["directory"] for s in per_worker}
        assert len(directories) == 1  # one shared store
        assert combined["directory"] in directories
        assert combined["hits"] == sum(s["hits"] for s in per_worker)
        assert combined["misses"] == sum(s["misses"]
                                         for s in per_worker)

    def test_worker_drain_report_round_trips_to_the_supervisor(
            self, process_tier):
        router, workers = process_tier
        report = workers[0].drain(10.0)
        assert report is not None
        assert report.completed
        assert report.remaining == 0
