"""Single-flight coalescing semantics (repro.service.singleflight)."""

import threading

import pytest

from repro.service import SingleFlight
from repro.testkit import wait_until


def _run_concurrently(count, fn):
    """Start *count* threads running fn(index); returns them started."""
    threads = [threading.Thread(target=fn, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    return threads


class TestSingleFlight:
    def test_sequential_calls_each_execute(self):
        flight = SingleFlight()
        calls = []
        for i in range(3):
            result, leader = flight.do("k", lambda i=i: calls.append(i) or i)
            assert leader
            assert result == i
        assert calls == [0, 1, 2]

    def test_concurrent_same_key_executes_once(self):
        flight = SingleFlight()
        executions = []
        release = threading.Event()
        results = {}

        def work():
            executions.append(threading.get_ident())
            release.wait(5)
            return "shared"

        def call(i):
            results[i] = flight.do("k", work)

        threads = _run_concurrently(6, call)
        # wait until all five followers are parked on the leader
        wait_until(lambda: flight.waiting("k") >= 5, timeout=5.0,
                   message="followers never parked on the leader")
        assert flight.waiting("k") == 5
        release.set()
        for thread in threads:
            thread.join(5)
        assert len(executions) == 1
        assert len(results) == 6
        values = [value for value, _ in results.values()]
        assert values == ["shared"] * 6
        leaders = [leader for _, leader in results.values()]
        assert leaders.count(True) == 1
        assert leaders.count(False) == 5

    def test_distinct_keys_run_independently(self):
        flight = SingleFlight()
        gate = threading.Event()
        seen = []

        def work(key):
            seen.append(key)
            gate.wait(5)
            return key

        results = {}

        def call(i):
            key = f"key-{i}"
            results[i] = flight.do(key, lambda key=key: work(key))

        threads = _run_concurrently(3, call)
        wait_until(lambda: flight.in_flight() >= 3, timeout=5.0,
                   message="three independent flights never started")
        assert flight.in_flight() == 3
        gate.set()
        for thread in threads:
            thread.join(5)
        assert sorted(seen) == ["key-0", "key-1", "key-2"]

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        release = threading.Event()
        outcomes = {}

        def work():
            release.wait(5)
            raise RuntimeError("pipeline exploded")

        def call(i):
            try:
                flight.do("k", work)
            except RuntimeError as exc:
                outcomes[i] = str(exc)
            else:  # pragma: no cover - would be a bug
                outcomes[i] = "no error"

        threads = _run_concurrently(4, call)
        wait_until(lambda: flight.waiting("k") >= 3, timeout=5.0,
                   message="followers never parked on the leader")
        release.set()
        for thread in threads:
            thread.join(5)
        assert list(outcomes.values()) == ["pipeline exploded"] * 4
        # the failed flight is retired: the next call starts fresh
        result, leader = flight.do("k", lambda: "recovered")
        assert (result, leader) == ("recovered", True)
        assert flight.in_flight() == 0

    def test_follower_timeout_raises_without_breaking_flight(self):
        flight = SingleFlight()
        release = threading.Event()
        late = {}

        def leader_call(i):
            late["leader"] = flight.do(
                "k", lambda: (release.wait(5), "done")[1])

        leader_thread = threading.Thread(target=leader_call, args=(0,))
        leader_thread.start()
        wait_until(flight.in_flight, timeout=5.0,
                   message="leader flight never started")
        with pytest.raises(TimeoutError):
            flight.do("k", lambda: "unused", timeout=0.05)
        release.set()
        leader_thread.join(5)
        assert late["leader"] == ("done", True)
