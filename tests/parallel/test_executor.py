"""map_ordered semantics: ordering, fallbacks, modes, span folding,
crash resilience under an active fault plan."""

import threading
import time

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.obs import METRICS, Tracer, activation, span
from repro.parallel import map_ordered, resolve_jobs


def _double(value):
    return value * 2


def _jittered_double(value):
    # later items finish first: completion order != input order
    time.sleep(0.02 * (5 - value) / 5)
    return value * 2


class TestOrdering:
    def test_results_keep_input_order_despite_jitter(self):
        items = list(range(5))
        assert (map_ordered(_jittered_double, items, jobs=4)
                == [0, 2, 4, 6, 8])

    def test_thread_mode_matches_serial(self):
        items = list(range(20))
        serial = map_ordered(_double, items, mode="serial")
        threaded = map_ordered(_double, items, jobs=4, mode="thread")
        assert serial == threaded

    def test_process_mode_matches_serial(self):
        items = list(range(8))
        assert (map_ordered(_double, items, jobs=2, mode="process")
                == [v * 2 for v in items])


class TestFallbacks:
    def test_jobs_one_runs_in_caller_thread(self):
        seen = []
        map_ordered(lambda _: seen.append(threading.get_ident()),
                    [1, 2, 3], jobs=1)
        assert set(seen) == {threading.get_ident()}

    def test_single_item_skips_pool(self):
        seen = []
        map_ordered(lambda _: seen.append(threading.get_ident()),
                    ["only"], jobs=8)
        assert seen == [threading.get_ident()]

    def test_empty_input(self):
        assert map_ordered(_double, [], jobs=4) == []

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown executor mode"):
            map_ordered(_double, [1, 2], jobs=2, mode="fiber")


class TestCrashResilience:
    def _plan(self, **kwargs):
        return FaultPlan(seed=kwargs.pop("seed", 0), specs=(
            FaultSpec("parallel.worker", "crash", **kwargs),))

    def test_bounded_crashes_retry_to_correct_results(self):
        METRICS.reset()
        plan = self._plan(probability=1.0, max_injections=2)
        with plan.activated():
            result = map_ordered(_double, list(range(6)), jobs=3)
        assert result == [0, 2, 4, 6, 8, 10]
        assert plan.injection_count == 2
        assert METRICS.snapshot().get("parallel.worker_retries", 0) >= 1

    def test_persistent_crashes_fall_back_to_serial(self):
        METRICS.reset()
        plan = self._plan(probability=1.0)
        with plan.activated():
            result = map_ordered(_double, list(range(4)), jobs=2)
        assert result == [0, 2, 4, 6]
        assert METRICS.snapshot().get("parallel.serial_fallbacks") == 4

    def test_serial_path_never_hits_the_worker_site(self):
        plan = self._plan(probability=1.0)
        with plan.activated():
            assert map_ordered(_double, [1, 2, 3], jobs=1) == [2, 4, 6]
        assert plan.injection_count == 0

    def test_user_exceptions_still_propagate_under_a_plan(self):
        def boom(value):
            raise ValueError(f"unit {value} is broken")

        with self._plan(probability=0.5).activated():
            with pytest.raises(ValueError, match="is broken"):
                map_ordered(boom, [1, 2, 3, 4], jobs=2)


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_cpu_count(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestSpanFolding:
    def test_pool_span_and_per_item_spans_recorded(self):
        tracer = Tracer()
        with activation(tracer):
            map_ordered(_double, [1, 2, 3], jobs=2,
                        span_label=lambda item, _i: f"unit:{item}",
                        pool_span="test-pool")
        trace = tracer.trace()
        pool = trace.find("test-pool")
        assert pool is not None
        assert pool.attributes["jobs"] == 2
        assert pool.attributes["tasks"] == 3
        labels = {record.name for record in trace.iter_spans()}
        assert {"unit:1", "unit:2", "unit:3"} <= labels

    def test_folded_spans_carry_worker_durations(self):
        tracer = Tracer()
        with activation(tracer):
            map_ordered(lambda _: time.sleep(0.01), [1, 2], jobs=2,
                        span_label=lambda item, _i: f"sleep:{item}",
                        pool_span="sleep-pool")
        spans = tracer.trace().find_all("sleep:")
        assert len(spans) == 2
        assert all(record.duration_s >= 0.005 for record in spans)

    def test_serial_path_leaves_ambient_tracer_usable(self):
        def unit(value):
            with span("inner"):
                return value

        tracer = Tracer()
        with activation(tracer):
            map_ordered(unit, [1], jobs=1)
        assert tracer.trace().find("inner") is not None
