"""Driver runtime tests: EMCO, UR, generic OPC UA, and the factory."""

import pytest

from repro.drivers import (DriverError, DriverFactory, EMCODriver,
                           OpcUaGenericDriver, URDriver, decode_value,
                           encode_value, host_machine_server)
from repro.machines import MachineSimulator
from repro.machines.catalog import DriverSpec
from repro.machines.specs import (EMCO_SPEC, SPEA_SPEC, UR5_SPEC)
from repro.opcua import UaNetwork


@pytest.fixture
def emco_sim():
    return MachineSimulator(EMCO_SPEC, seed=1)


@pytest.fixture
def emco_driver(emco_sim):
    driver = EMCODriver(EMCO_SPEC.driver, emco_sim)
    driver.connect()
    return driver


class TestWireEncoding:
    @pytest.mark.parametrize("value,data_type", [
        (1.5, "Real"), (-3, "Integer"), (True, "Boolean"),
        (False, "Boolean"), ("hello world", "String"),
        ("50%", "String"), ("", "String"),
    ])
    def test_roundtrip(self, value, data_type):
        assert decode_value(encode_value(value), data_type) == value


class TestEMCODriver:
    def test_protocol_mismatch_rejected(self, emco_sim):
        with pytest.raises(DriverError, match="implements"):
            EMCODriver(DriverSpec(protocol="URDriver"), emco_sim)

    def test_requires_ip_parameter(self, emco_sim):
        driver = EMCODriver(DriverSpec(protocol="EMCODriver"), emco_sim)
        with pytest.raises(DriverError, match="no 'ip'"):
            driver.connect()

    def test_read_variable(self, emco_driver, emco_sim):
        emco_sim.write("actual_X", 12.5)
        assert emco_driver.read_variable("actual_X") == 12.5

    def test_read_string_variable_with_spaces(self, emco_driver, emco_sim):
        emco_sim.write("error_message", "spindle over temp")
        assert emco_driver.read_variable("error_message") == \
            "spindle over temp"

    def test_read_unknown_variable(self, emco_driver):
        with pytest.raises(DriverError, match="ERR"):
            emco_driver.read_variable("bogus")

    def test_call_method(self, emco_driver):
        assert emco_driver.call_method("is_ready") == (True,)

    def test_call_with_arguments(self, emco_driver):
        assert emco_driver.call_method("move_to", 1.0, 2.0, 3.0) == (True,)

    def test_call_bad_arity(self, emco_driver):
        with pytest.raises(DriverError, match="arity"):
            emco_driver.call_method("move_to", 1.0)

    def test_requires_connection(self, emco_sim):
        driver = EMCODriver(EMCO_SPEC.driver, emco_sim)
        with pytest.raises(DriverError, match="not connected"):
            driver.read_variable("actual_X")

    def test_subscription_events(self, emco_driver, emco_sim):
        seen = []
        emco_driver.subscribe(lambda n, v: seen.append((n, v)))
        emco_sim.write("spindle_speed", 4000.0)
        assert ("spindle_speed", 4000.0) in seen

    def test_disconnect_stops_events(self, emco_driver, emco_sim):
        seen = []
        emco_driver.subscribe(lambda n, v: seen.append(n))
        emco_driver.disconnect()
        emco_sim.write("spindle_speed", 1.0)
        assert seen == []

    def test_frame_counters(self, emco_driver):
        emco_driver.read_variable("actual_X")
        emco_driver.call_method("is_ready")
        assert emco_driver.frames_sent == 2
        assert emco_driver.frames_received == 2

    def test_names(self, emco_driver):
        assert len(emco_driver.variable_names()) == 34
        assert len(emco_driver.method_names()) == 19


class TestURDriver:
    @pytest.fixture
    def ur_driver(self):
        sim = MachineSimulator(UR5_SPEC, seed=2)
        driver = URDriver(UR5_SPEC.driver, sim)
        driver.connect()
        return driver, sim

    def test_telegram_contains_all_variables(self, ur_driver):
        driver, _sim = ur_driver
        telegram = driver.receive_telegram()
        assert len(telegram) == 99

    def test_read_variable_via_telegram(self, ur_driver):
        driver, sim = ur_driver
        sim.write("base_position", 1.57)
        assert driver.read_variable("base_position") == 1.57

    def test_unknown_telegram_field(self, ur_driver):
        driver, _sim = ur_driver
        with pytest.raises(DriverError):
            driver.read_variable("bogus")

    def test_dashboard_play(self, ur_driver):
        driver, sim = ur_driver
        assert driver.send_dashboard_command("play") == "Starting program"
        assert sim.read("is_running") is True

    def test_dashboard_load_program(self, ur_driver):
        driver, _sim = ur_driver
        reply = driver.send_dashboard_command("load_program", "pickplace")
        assert reply == "Loading program: pickplace"

    def test_dashboard_unknown_command(self, ur_driver):
        driver, _sim = ur_driver
        assert "could not understand" in \
            driver.send_dashboard_command("fly")

    def test_call_method_maps_to_dashboard(self, ur_driver):
        driver, _sim = ur_driver
        assert driver.call_method("stop") == (True,)
        with pytest.raises(DriverError):
            driver.call_method("fly")


class TestOpcUaGenericDriver:
    @pytest.fixture
    def setup(self):
        network = UaNetwork()
        sim = MachineSimulator(SPEA_SPEC, seed=3)
        server = host_machine_server(
            sim, SPEA_SPEC.driver.parameters["endpoint"], network)
        driver = OpcUaGenericDriver(SPEA_SPEC.driver, "spea", network)
        driver.connect()
        yield driver, sim, server
        server.stop()

    def test_read_variable(self, setup):
        driver, sim, _server = setup
        sim.write("tests_passed", 17)
        assert driver.read_variable("tests_passed") == 17

    def test_call_method(self, setup):
        driver, _sim, _server = setup
        assert driver.call_method("is_ready") == (True,)

    def test_machine_writes_propagate_to_server(self, setup):
        driver, sim, server = setup
        sim.write("test_status", "running")
        node = server.space.browse_path("spea/data/test_status")
        assert node.value == "running"

    def test_subscription_events(self, setup):
        driver, sim, _server = setup
        seen = []
        driver.subscribe(lambda n, v: seen.append((n, v)))
        sim.write("tests_failed", 2)
        assert ("tests_failed", 2) in seen

    def test_names(self, setup):
        driver, _sim, _server = setup
        assert len(driver.variable_names()) == 3
        assert len(driver.method_names()) == 5

    def test_missing_endpoint(self):
        network = UaNetwork()
        driver = OpcUaGenericDriver(
            DriverSpec(protocol="OPCUADriver"), "x", network)
        with pytest.raises(DriverError, match="endpoint"):
            driver.connect()

    def test_unreachable_endpoint(self):
        network = UaNetwork()
        driver = OpcUaGenericDriver(
            DriverSpec(protocol="OPCUADriver",
                       parameters={"endpoint": "opc.tcp://ghost:4840"}),
            "x", network)
        with pytest.raises(DriverError):
            driver.connect()


class TestDriverFactory:
    def test_creates_proper_runtimes(self):
        network = UaNetwork()
        factory = DriverFactory(network)
        emco = factory.create(EMCO_SPEC, MachineSimulator(EMCO_SPEC))
        assert isinstance(emco, EMCODriver)
        ur = factory.create(UR5_SPEC, MachineSimulator(UR5_SPEC))
        assert isinstance(ur, URDriver)
        spea = factory.create(SPEA_SPEC, MachineSimulator(SPEA_SPEC))
        assert isinstance(spea, OpcUaGenericDriver)
        factory.shutdown()

    def test_machine_server_hosted_once(self):
        network = UaNetwork()
        factory = DriverFactory(network)
        sim = MachineSimulator(SPEA_SPEC)
        factory.create(SPEA_SPEC, sim)
        factory.create(SPEA_SPEC, sim)
        assert len(factory.machine_servers) == 1
        factory.shutdown()
        assert len(network) == 0

    def test_unknown_protocol(self):
        from repro.machines.catalog import MachineSpec
        spec = MachineSpec(
            name="x", display_name="x", type_name="X", workcell="wc",
            driver=DriverSpec(protocol="Banana"))
        factory = DriverFactory(UaNetwork())
        with pytest.raises(DriverError, match="no driver runtime"):
            factory.create(spec, MachineSimulator(spec))
