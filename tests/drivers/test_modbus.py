"""Modbus driver tests: register maps, encodings, runtime behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.drivers import (DriverError, DriverFactory, ModbusDriver,
                           build_register_map, decode_float, decode_int,
                           decode_string, encode_float, encode_int,
                           encode_string)
from repro.drivers.modbus import (COIL_BASE, HOLDING_BASE, STRING_BASE,
                                  STRING_SLOT_REGISTERS)
from repro.isa95.levels import VariableSpec
from repro.machines import MachineSimulator
from repro.machines.catalog import DriverSpec, MachineSpec, simple_service
from repro.opcua import UaNetwork


def modbus_machine():
    spec = MachineSpec(
        name="press",
        display_name="Hydraulic Press",
        type_name="HydraulicPress",
        workcell="wc",
        driver=DriverSpec(protocol="ModbusDriver", is_generic=True,
                          parameters={"ip": "10.2.0.5", "ip_port": 502,
                                      "unit_id": 1}),
        categories={
            "Process": [
                VariableSpec("pressure", "Real", unit="bar"),
                VariableSpec("stroke_count", "Integer"),
                VariableSpec("clamped", "Boolean"),
                VariableSpec("state", "String"),
                VariableSpec("temperature", "Real", unit="degC"),
            ],
        },
        services=[
            simple_service("press_cycle"),
            simple_service("release"),
        ],
    )
    return MachineSimulator(spec, seed=4)


@pytest.fixture
def driver():
    machine = modbus_machine()
    driver = ModbusDriver(machine.spec.driver, machine)
    driver.connect()
    return driver, machine


class TestEncodings:
    @settings(max_examples=200, deadline=None)
    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e30, max_value=1e30))
    def test_float_roundtrip_to_float32(self, value):
        import struct
        expected = struct.unpack(">f", struct.pack(">f", value))[0]
        assert decode_float(*encode_float(value)) == expected

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_int32_roundtrip(self, value):
        assert decode_int(*encode_int(value)) == value

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=16))
    def test_string_roundtrip(self, value):
        registers = encode_string(value)
        assert len(registers) == STRING_SLOT_REGISTERS
        decoded = decode_string(registers)
        # strings without NULs under the slot size roundtrip exactly
        if "\x00" not in value and len(value.encode()) <= 32:
            assert decoded == value

    def test_registers_are_16_bit(self):
        for register in encode_float(1.5e9) + encode_int(-1):
            assert 0 <= register <= 0xFFFF


class TestRegisterMap:
    def test_layout(self):
        machine = modbus_machine()
        register_map = build_register_map(machine)
        assert register_map["clamped"].address == COIL_BASE
        assert register_map["pressure"].address == HOLDING_BASE
        assert register_map["stroke_count"].address == HOLDING_BASE + 2
        assert register_map["temperature"].address == HOLDING_BASE + 4
        assert register_map["state"].address == STRING_BASE

    def test_no_overlaps(self):
        machine = modbus_machine()
        bindings = sorted(build_register_map(machine).values(),
                          key=lambda b: b.address)
        for first, second in zip(bindings, bindings[1:]):
            assert first.end <= second.address or \
                first.data_type == "Boolean"  # coils live in another table


class TestRuntime:
    def test_read_real(self, driver):
        modbus, machine = driver
        machine.write("pressure", 12.25)  # float32-exact
        assert modbus.read_variable("pressure") == 12.25

    def test_read_real_loses_float64_precision(self, driver):
        modbus, machine = driver
        machine.write("pressure", 0.1)
        value = modbus.read_variable("pressure")
        assert value == pytest.approx(0.1, rel=1e-6)
        assert value != 0.1  # float32 quantization is modeled

    def test_read_integer(self, driver):
        modbus, machine = driver
        machine.write("stroke_count", -42)
        assert modbus.read_variable("stroke_count") == -42

    def test_read_boolean(self, driver):
        modbus, machine = driver
        machine.write("clamped", True)
        assert modbus.read_variable("clamped") is True

    def test_read_string(self, driver):
        modbus, machine = driver
        machine.write("state", "running")
        assert modbus.read_variable("state") == "running"

    def test_raw_register_read(self, driver):
        modbus, machine = driver
        machine.write("stroke_count", 7)
        binding = modbus.register_map["stroke_count"]
        registers = modbus.read_holding_registers(binding.address,
                                                  binding.count)
        assert decode_int(*registers) == 7

    def test_partial_read_rejected(self, driver):
        modbus, _ = driver
        binding = modbus.register_map["pressure"]
        with pytest.raises(DriverError, match="partial"):
            modbus.read_holding_registers(binding.address, 1)

    def test_unmapped_address_rejected(self, driver):
        modbus, _ = driver
        with pytest.raises(DriverError, match="no register"):
            modbus.read_holding_registers(99999, 2)

    def test_unknown_variable(self, driver):
        modbus, _ = driver
        with pytest.raises(DriverError):
            modbus.read_variable("ghost")

    def test_method_call_via_command_table(self, driver):
        modbus, machine = driver
        assert modbus.call_method("press_cycle") == (True,)
        assert machine.call_log[-1][0] == "press_cycle"
        assert modbus.writes == 1

    def test_unknown_method(self, driver):
        modbus, _ = driver
        with pytest.raises(DriverError, match="command table"):
            modbus.call_method("explode")

    def test_subscription_events(self, driver):
        modbus, machine = driver
        seen = []
        modbus.subscribe(lambda n, v: seen.append(n))
        machine.write("pressure", 3.0)
        assert "pressure" in seen

    def test_factory_dispatch(self):
        machine = modbus_machine()
        factory = DriverFactory(UaNetwork())
        runtime = factory.create(machine.spec, machine)
        assert isinstance(runtime, ModbusDriver)
