"""KPI monitor tests (ISA-95 aggregated information)."""

import pytest

from repro.icelab import run_icelab
from repro.som import KpiMonitor


@pytest.fixture(scope="module")
def deployed():
    result = run_icelab(smoke_steps=4, seed=9)
    yield result
    result.shutdown()


@pytest.fixture(scope="module")
def monitor(deployed):
    return KpiMonitor(deployed.world.store, deployed.topology)


class TestWorkcellKpi:
    def test_full_availability_after_smoke(self, monitor):
        kpi = monitor.workcell_kpi("workCell02")
        assert kpi.machines_total == 2  # emco + ur5
        assert kpi.machines_reporting == 2
        assert kpi.availability == 1.0

    def test_active_variables_counted(self, monitor):
        kpi = monitor.workcell_kpi("workCell02")
        assert kpi.variables_active == 34 + 99

    def test_samples_accumulate(self, monitor):
        kpi = monitor.workcell_kpi("workCell06")
        assert kpi.samples > 296  # conveyor alone floods the store

    def test_energy_aggregation(self, monitor):
        # ur5 (power_consumption) and conveyor (power_consumption)
        kpi02 = monitor.workcell_kpi("workCell02")
        assert kpi02.energy_w >= 0.0
        # energy comes only from *_power/energy variables
        kpi05 = monitor.workcell_kpi("workCell05")
        assert kpi05.energy_w == 0.0  # warehouse has no power variable

    def test_time_window_filters(self, monitor, deployed):
        now = deployed.world.clock
        future = monitor.workcell_kpi("workCell02", start=now + 1000)
        assert future.samples == 0
        assert future.availability == 0.0

    def test_unknown_workcell(self, monitor):
        with pytest.raises(KeyError):
            monitor.workcell_kpi("workCell99")


class TestLineKpi:
    def test_line_aggregates_all_cells(self, monitor):
        line = monitor.line_kpi()
        assert line.production_line == "ICEProductionLine"
        assert len(line.workcells) == 6
        assert line.machines_total == 10
        assert line.machines_reporting == 10
        assert line.availability == 1.0

    def test_total_samples(self, monitor, deployed):
        line = monitor.line_kpi()
        assert line.total_samples == deployed.world.store.stats()["points"]

    def test_render(self, monitor):
        text = monitor.line_kpi().render()
        assert "availability 100%" in text
        assert "workCell06" in text


class TestStaleMachines:
    def test_none_stale_right_after_run(self, monitor, deployed):
        # everything sampled within the smoke window
        assert monitor.stale_machines(newer_than=0.0) == []

    def test_all_stale_in_future_window(self, monitor, deployed):
        stale = monitor.stale_machines(
            newer_than=deployed.world.clock + 1000)
        assert len(stale) == 10

    def test_spea_goes_stale_without_steps(self, deployed, monitor):
        # advance the wall clock, then step only the conveyor: other
        # machines stop reporting fresh samples
        now = deployed.world.clock
        deployed.world.clock = now + 1.0
        deployed.world.simulators["conveyor"].step()
        stale = monitor.stale_machines(newer_than=now + 0.5)
        assert "conveyor" not in stale
        assert "spea" in stale
