"""Service registry, production process, and orchestrator tests."""

import pytest

from repro.broker import MessageBroker
from repro.isa95.levels import (ArgumentSpec, DriverInfo, FactoryTopology,
                                MachineInfo, ServiceSpec, WorkcellInfo)
from repro.som import (MachineService, OrchestrationError, Orchestrator,
                       ProductionProcess, ServiceLookupError,
                       ServiceRegistry)


def mini_topology():
    topology = FactoryTopology(enterprise="e", site="s", area="ICELab",
                               production_lines=["line1"])
    workcell = WorkcellInfo(name="wc1", production_line="line1")
    workcell.machines.append(MachineInfo(
        name="mill", type_name="Mill", workcell="wc1",
        services=[
            ServiceSpec("is_ready",
                        outputs=[ArgumentSpec("ready", "Boolean")]),
            ServiceSpec("start",
                        inputs=[ArgumentSpec("program", "String")],
                        outputs=[ArgumentSpec("ok", "Boolean")]),
        ],
        driver=DriverInfo(name="d", protocol="P")))
    topology.workcells.append(workcell)
    return topology


@pytest.fixture
def registry():
    return ServiceRegistry.from_topology(mini_topology(), "icelab/line1")


class TestServiceRegistry:
    def test_services_registered_with_topics(self, registry):
        service = registry.lookup("mill", "is_ready")
        assert service.topic == "icelab/line1/wc1/mill/services/is_ready"
        assert service.output_names == ("ready",)

    def test_lookup_missing(self, registry):
        with pytest.raises(ServiceLookupError):
            registry.lookup("mill", "fly")
        with pytest.raises(ServiceLookupError):
            registry.lookup("ghost", "is_ready")

    def test_services_of_machine(self, registry):
        assert {s.name for s in registry.services_of("mill")} == \
            {"is_ready", "start"}

    def test_machines_listing(self, registry):
        assert registry.machines() == ["mill"]

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register(MachineService(
                machine="mill", workcell="wc1", name="is_ready",
                topic="x"))

    def test_len_and_iter(self, registry):
        assert len(registry) == 2
        assert {s.qualified_name for s in registry} == \
            {"mill.is_ready", "mill.start"}


class TestProductionProcess:
    def test_add_step_chained(self):
        process = ProductionProcess("p").add_step(
            "mill", "start", "prog.nc").add_step("mill", "is_ready")
        assert len(process) == 2
        assert process.steps[0].args == ("prog.nc",)

    def test_machines_involved_ordered_unique(self):
        process = (ProductionProcess("p")
                   .add_step("a", "s1").add_step("b", "s2")
                   .add_step("a", "s3"))
        assert process.machines_involved() == ["a", "b"]

    def test_validate_against_registry(self, registry):
        good = ProductionProcess("ok").add_step("mill", "start", "p.nc")
        assert good.validate_against(registry) == []
        bad = ProductionProcess("bad").add_step("mill", "fly")
        assert bad.validate_against(registry) == ["mill.fly"]

    def test_validate_detects_arity(self, registry):
        process = ProductionProcess("p").add_step("mill", "start")
        problems = process.validate_against(registry)
        assert problems and "arity" in problems[0]


class TestOrchestrator:
    @pytest.fixture
    def served(self, registry):
        broker = MessageBroker()
        from repro.broker import BrokerClient
        responder = BrokerClient(broker, "bridge")
        calls = []

        def handle(topic, request):
            calls.append((topic, request.get("args")))
            if topic.endswith("is_ready"):
                return {"ok": True, "outputs": [True]}
            if request.get("args") == ["bad.nc"]:
                return {"ok": False, "error": "no such program"}
            return {"ok": True, "outputs": [True]}

        responder.serve("icelab/line1/wc1/mill/services/+", handle)
        return Orchestrator(registry, broker), calls

    def test_invoke(self, served):
        orchestrator, calls = served
        assert orchestrator.invoke("mill", "is_ready") == [True]
        assert calls[-1][0].endswith("is_ready")

    def test_invoke_failure_raises(self, served):
        orchestrator, _ = served
        with pytest.raises(OrchestrationError, match="no such program"):
            orchestrator.invoke("mill", "start", "bad.nc")

    def test_invoke_unreachable_raises(self, registry):
        orchestrator = Orchestrator(registry, MessageBroker())
        with pytest.raises(OrchestrationError, match="unreachable"):
            orchestrator.invoke("mill", "is_ready")

    def test_execute_process(self, served):
        orchestrator, _ = served
        process = (ProductionProcess("job")
                   .add_step("mill", "is_ready")
                   .add_step("mill", "start", "good.nc"))
        result = orchestrator.execute(process)
        assert result.ok
        assert result.completed_steps == 2

    def test_execute_stops_on_error(self, served):
        orchestrator, calls = served
        process = (ProductionProcess("job")
                   .add_step("mill", "start", "bad.nc")
                   .add_step("mill", "is_ready"))
        result = orchestrator.execute(process)
        assert not result.ok
        assert result.completed_steps == 0
        assert len(result.steps) == 1  # stopped early

    def test_execute_continue_on_error(self, served):
        orchestrator, _ = served
        process = (ProductionProcess("job")
                   .add_step("mill", "start", "bad.nc")
                   .add_step("mill", "is_ready"))
        result = orchestrator.execute(process, stop_on_error=False)
        assert len(result.steps) == 2
        assert result.steps[1].ok

    def test_execute_rejects_unknown_services_upfront(self, served):
        orchestrator, calls = served
        process = ProductionProcess("job").add_step("mill", "fly")
        with pytest.raises(OrchestrationError, match="unknown services"):
            orchestrator.execute(process)
        assert calls == []  # nothing was invoked
