"""Component tests: workcell server, broker bridge, historian, world."""

import pytest

from repro.codegen import (PipelineOptions, generate_configuration,
                           topic_root)
from repro.machines.specs import EMCO_SPEC, SPEA_SPEC
from repro.icelab.model_gen import load_icelab_model
from repro.som import (FactoryWorld, HistorianComponent,
                       UaBrokerBridgeComponent, WorkcellServerComponent)


SPECS = [EMCO_SPEC, SPEA_SPEC]


@pytest.fixture(scope="module")
def generation():
    model = load_icelab_model(SPECS)
    return generate_configuration(
        model, options=PipelineOptions(namespace="test"))


@pytest.fixture
def world():
    world = FactoryWorld.for_specs(SPECS, seed=11)
    yield world
    world.driver_factory.shutdown()


def start_servers(generation, world):
    servers = []
    for config in generation.server_configs.values():
        component = WorkcellServerComponent(config, world)
        component.start()
        servers.append(component)
    return servers


class TestWorkcellServer:
    def test_server_exposes_machine_nodes(self, generation, world):
        servers = start_servers(generation, world)
        wc02 = next(s for s in servers
                    if s.config["workcell"] == "workCell02")
        space = wc02.server.space
        assert space.browse_path("emco/data/actual_X") is not None
        assert space.browse_path("emco/services/is_ready") is not None
        for server in servers:
            server.stop()

    def test_machine_changes_mirrored(self, generation, world):
        servers = start_servers(generation, world)
        wc02 = next(s for s in servers
                    if s.config["workcell"] == "workCell02")
        world.simulators["emco"].write("actual_X", 7.5)
        node = wc02.server.space.browse_path("emco/data/actual_X")
        assert node.value == 7.5
        assert wc02.mirrored_writes >= 1
        for server in servers:
            server.stop()

    def test_method_forwarded_to_machine(self, generation, world):
        servers = start_servers(generation, world)
        wc02 = next(s for s in servers
                    if s.config["workcell"] == "workCell02")
        method = wc02.server.space.browse_path("emco/services/is_ready")
        assert method.call() == (True,)
        assert world.simulators["emco"].call_log[-1][0] == "is_ready"
        for server in servers:
            server.stop()

    def test_unknown_machine_fails(self, generation):
        lonely = FactoryWorld()  # no simulators
        config = next(iter(generation.server_configs.values()))
        component = WorkcellServerComponent(config, lonely)
        with pytest.raises(Exception, match="plant floor"):
            component.start()


class TestBridge:
    @pytest.fixture
    def running(self, generation, world):
        servers = start_servers(generation, world)
        bridges = []
        for config in generation.client_configs:
            bridge = UaBrokerBridgeComponent(config, world)
            bridge.start()
            bridges.append(bridge)
        yield world, bridges
        for bridge in bridges:
            bridge.stop()
        for server in servers:
            server.stop()

    def test_initial_values_published_retained(self, running):
        world, bridges = running
        root = topic_root(
            next(iter(bridges)).config and None or None) if False else None
        seen = []
        world.broker.subscribe("probe", "#", lambda t, p: seen.append(t))
        # retained initial samples arrive on subscribe
        data_topics = [t for t in seen if "/data/" in t]
        assert len(data_topics) == EMCO_SPEC.variable_count + \
            SPEA_SPEC.variable_count

    def test_variable_change_forwarded(self, running):
        world, bridges = running
        payloads = []
        world.broker.subscribe(
            "probe", "icelab/iceproductionline/+/emco/data/actual_X",
            lambda t, p: payloads.append(p), receive_retained=False)
        world.simulators["emco"].write("actual_X", 3.25)
        assert payloads
        assert payloads[-1]["value"] == 3.25

    def test_service_request_served(self, running):
        world, bridges = running
        from repro.broker import BrokerClient
        client = BrokerClient(world.broker, "tester")
        bridge = next(b for b in bridges
                      if any(m["machine"] == "emco"
                             for m in b.config["machines"]))
        emco_config = next(m for m in bridge.config["machines"]
                           if m["machine"] == "emco")
        method = next(m for m in emco_config["methods"]
                      if m["method"] == "is_ready")
        reply = client.request(method["topic"], {"args": []})
        assert reply == {"ok": True, "outputs": [True]}
        assert bridge.served_calls == 1

    def test_service_request_bad_arity(self, running):
        world, bridges = running
        from repro.broker import BrokerClient
        client = BrokerClient(world.broker, "tester")
        bridge = next(b for b in bridges
                      if any(m["machine"] == "emco"
                             for m in b.config["machines"]))
        emco_config = next(m for m in bridge.config["machines"]
                           if m["machine"] == "emco")
        method = next(m for m in emco_config["methods"]
                      if m["method"] == "move_to")
        reply = client.request(method["topic"], {"args": [1.0]})
        assert reply["ok"] is False
        assert "expected 3" in reply["error"]


class TestHistorianComponent:
    def test_records_into_store(self, generation, world):
        servers = start_servers(generation, world)
        bridges = [UaBrokerBridgeComponent(c, world)
                   for c in generation.client_configs]
        historians = [HistorianComponent(c, world)
                      for c in generation.storage_configs]
        for historian in historians:
            historian.start()
        for bridge in bridges:
            bridge.start()
        world.step()
        assert world.store.stats()["points"] > 0
        assert sum(h.records for h in historians) > 0
        for component in bridges + historians + servers:
            component.stop()


class TestFactoryWorld:
    def test_for_specs_builds_simulators(self):
        world = FactoryWorld.for_specs(SPECS)
        assert set(world.simulators) == {"emco", "spea"}

    def test_step_advances_all(self):
        world = FactoryWorld.for_specs(SPECS, seed=1)
        before = world.simulators["emco"].variables()
        world.step()
        assert world.clock == 1.0
        assert world.simulators["emco"].variables() != before
