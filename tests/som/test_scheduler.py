"""Scheduler tests: correctness invariants + execution on the ICE lab."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.som import (OrchestrationError, ProductionProcess, Schedule,
                       Scheduler, SchedulingError, ServiceLookupError)


def process(name, steps):
    p = ProductionProcess(name)
    for machine, service in steps:
        p.add_step(machine, service)
    return p


class TestScheduleBasics:
    def test_single_process_sequential(self):
        p = process("job", [("a", "s1"), ("a", "s2"), ("b", "s3")])
        schedule = Scheduler().schedule([p])
        entries = schedule.for_process("job")
        assert [e.start for e in entries] == [0.0, 1.0, 2.0]
        assert schedule.makespan == 3.0
        assert schedule.validate() == []

    def test_independent_processes_run_in_parallel(self):
        p1 = process("j1", [("a", "s")] * 2)
        p2 = process("j2", [("b", "s")] * 2)
        schedule = Scheduler().schedule([p1, p2])
        assert schedule.makespan == 2.0  # no shared machine

    def test_shared_machine_serializes(self):
        p1 = process("j1", [("mill", "s")])
        p2 = process("j2", [("mill", "s")])
        schedule = Scheduler().schedule([p1, p2])
        assert schedule.makespan == 2.0
        timeline = schedule.for_machine("mill")
        assert timeline[0].end <= timeline[1].start

    def test_durations_respected(self):
        p = process("job", [("mill", "long"), ("mill", "short")])
        scheduler = Scheduler(durations={"mill.long": 5.0})
        schedule = scheduler.schedule([p])
        assert schedule.makespan == 6.0

    def test_empty_input(self):
        assert Scheduler().schedule([]).makespan == 0.0

    def test_duplicate_process_names_rejected(self):
        with pytest.raises(SchedulingError):
            Scheduler().schedule([process("x", [("a", "s")]),
                                  process("x", [("a", "s")])])

    def test_deterministic(self):
        processes = [process(f"j{i}", [("m1", "a"), ("m2", "b")])
                     for i in range(4)]
        first = Scheduler().schedule(processes)
        second = Scheduler().schedule(processes)
        assert [(e.process, e.start) for e in first.entries] == \
            [(e.process, e.start) for e in second.entries]

    def test_render(self):
        schedule = Scheduler().schedule(
            [process("job", [("mill", "go")])])
        text = schedule.render()
        assert "makespan 1" in text
        assert "mill" in text


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.lists(st.tuples(st.sampled_from(["m1", "m2", "m3"]),
                       st.sampled_from(["s1", "s2"])),
             min_size=1, max_size=5),
    min_size=1, max_size=5))
def test_schedule_invariants(step_lists):
    processes = [process(f"p{i}", steps)
                 for i, steps in enumerate(step_lists)]
    schedule = Scheduler().schedule(processes)
    # every step scheduled exactly once
    assert len(schedule.entries) == sum(len(p) for p in processes)
    # validator finds no machine overlap or order violation
    assert schedule.validate() == []
    # makespan bounded: between the critical path and the serial total
    total = sum(len(p) for p in processes)
    longest = max(len(p) for p in processes)
    per_machine = {}
    for steps in step_lists:
        for machine, _ in steps:
            per_machine[machine] = per_machine.get(machine, 0) + 1
    bottleneck = max(per_machine.values())
    assert max(longest, bottleneck) <= schedule.makespan <= total


class TestExecutionOnIceLab:
    @pytest.fixture(scope="class")
    def deployed(self):
        from repro.icelab import run_icelab
        result = run_icelab(smoke_steps=2, seed=21)
        yield result
        result.shutdown()

    def test_batch_of_jobs_executes(self, deployed):
        jobs = [
            (ProductionProcess("mill-A")
             .add_step("warehouse", "fetch_tray", 1)
             .add_step("kairos1", "dock")
             .add_step("emco", "start_program")),
            (ProductionProcess("mill-B")
             .add_step("warehouse", "fetch_tray", 2)
             .add_step("kairos2", "dock")
             .add_step("emco", "start_program")),
            (ProductionProcess("inspect")
             .add_step("qcPc", "inspect", "unit")
             .add_step("conveyor", "route_pallet", 1, 3)),
        ]
        outcome = Scheduler().execute(jobs, deployed.orchestrator)
        assert outcome["failed"] == 0
        assert outcome["executed"] == 8
        schedule = outcome["schedule"]
        # warehouse and emco are contended across the two mill jobs
        warehouse_slots = schedule.for_machine("warehouse")
        assert warehouse_slots[0].end <= warehouse_slots[1].start


class TestExecuteErrorNarrowing:
    """execute() counts typed service failures; real bugs propagate."""

    def _jobs(self):
        return [process("job", [("mill", "cut")])]

    def test_orchestration_error_counts_as_failed(self):
        class Failing:
            def invoke(self, *_args):
                raise OrchestrationError("unreachable")
        outcome = Scheduler().execute(self._jobs(), Failing())
        assert outcome["failed"] == 1
        assert outcome["executed"] == 0

    def test_service_lookup_error_counts_as_failed(self):
        class Unknown:
            def invoke(self, *_args):
                raise ServiceLookupError("mill.cut")
        outcome = Scheduler().execute(self._jobs(), Unknown())
        assert outcome["failed"] == 1

    def test_memory_error_propagates(self):
        class Leaky:
            def invoke(self, *_args):
                raise MemoryError()
        with pytest.raises(MemoryError):
            Scheduler().execute(self._jobs(), Leaky())

    def test_keyboard_interrupt_propagates(self):
        class Interrupted:
            def invoke(self, *_args):
                raise KeyboardInterrupt()
        with pytest.raises(KeyboardInterrupt):
            Scheduler().execute(self._jobs(), Interrupted())

    def test_harness_bugs_propagate(self):
        class Drifted:
            def invoke(self, *_args):
                raise TypeError("invoke() signature changed")
        with pytest.raises(TypeError):
            Scheduler().execute(self._jobs(), Drifted())
