"""Rolling updates and live incremental redeployment.

The strongest scenario: a running ICE lab gets a *model* change (a new
warehouse variable); the incremental pipeline regenerates the affected
manifests; applying them rolls only the touched components; and the new
variable then flows end to end into the database.
"""

import copy
import json

import pytest

from repro.codegen import (GenerationPipeline, PipelineOptions,
                           regenerate)
from repro.icelab import run_icelab
from repro.icelab.model_gen import icelab_sources
from repro.isa95.levels import VariableSpec
from repro.k8s import Cluster, apply_incremental
from repro.machines.specs import ICE_LAB_SPECS
from repro.sysml import load_model

from test_resources import deployment_manifest


def configmap_manifest(name="web-config", payload=None):
    return {
        "kind": "ConfigMap",
        "metadata": {"name": name, "namespace": "test"},
        "data": {"config.json": json.dumps(payload or {"v": 1})},
    }


class TestRollingUpdateMechanics:
    def test_configmap_change_rolls_pods(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest(payload={"v": 1}))
        cluster.apply_manifest(deployment_manifest(replicas=2))
        old_names = {p.metadata.name for p in cluster.running_pods()}
        cluster.apply_manifest(configmap_manifest(payload={"v": 2}))
        new_pods = cluster.running_pods()
        assert len(new_pods) == 2
        assert {p.metadata.name for p in new_pods}.isdisjoint(old_names)
        assert all(p.config == {"v": 2} for p in new_pods)

    def test_unchanged_configmap_does_not_roll(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest(payload={"v": 1}))
        cluster.apply_manifest(deployment_manifest(replicas=2))
        old_names = {p.metadata.name for p in cluster.running_pods()}
        cluster.apply_manifest(configmap_manifest(payload={"v": 1}))
        assert {p.metadata.name
                for p in cluster.running_pods()} == old_names

    def test_deployment_image_change_rolls_pods(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=1))
        old = cluster.running_pods()[0].metadata.name
        changed = deployment_manifest(replicas=1)
        template_spec = changed["spec"]["template"]["spec"]
        template_spec["containers"][0]["image"] = "img:2"
        cluster.apply_manifest(changed)
        pods = cluster.running_pods()
        assert len(pods) == 1
        assert pods[0].metadata.name != old
        assert pods[0].containers[0].image == "img:2"

    def test_replica_change_alone_does_not_restart(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=1))
        survivor = cluster.running_pods()[0].metadata.name
        cluster.apply_manifest(deployment_manifest(replicas=3))
        names = {p.metadata.name for p in cluster.running_pods()}
        assert survivor in names
        assert len(names) == 3


class TestLiveModelChange:
    @pytest.fixture(scope="class")
    def deployed(self):
        result = run_icelab(smoke_steps=3, seed=31)
        yield result
        result.shutdown()

    def test_new_variable_flows_after_incremental_redeploy(self, deployed):
        # 1. edit the model: warehouse gains a humidity sensor
        specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
        warehouse_spec = next(s for s in specs if s.name == "warehouse")
        warehouse_spec.categories["Storage"].append(
            VariableSpec("humidity", "Real", unit="%"))
        new_model = load_model(*icelab_sources(specs))
        with pytest.deprecated_call():
            incremental = regenerate(deployed.generation, deployed.model,
                                     new_model,
                                     GenerationPipeline(
                                         PipelineOptions(
                                             namespace="icelab")))
        assert incremental.changed_machines == ["warehouse"]

        # 2. the plant itself gains the sensor (new machine firmware)
        from repro.machines import MachineSimulator
        deployed.world.simulators["warehouse"] = MachineSimulator(
            warehouse_spec, seed=77)

        # 3. apply only the regenerated manifests
        outcome = apply_incremental(deployed.cluster, incremental)
        assert outcome["running"] == 14
        assert outcome["restarted_downstream"] >= 8  # server rolled

        # 4. the new variable reaches the database
        deployed.world.step()
        series = deployed.world.store.series(
            "machine_data",
            tags={"machine": "warehouse", "variable": "humidity"})
        assert series, "humidity never reached the store"

    def test_untouched_machines_kept_flowing(self, deployed):
        before = deployed.world.store.stats()["points"]
        deployed.world.step()
        after = deployed.world.store.stats()["points"]
        assert after > before
