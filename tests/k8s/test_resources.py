"""Kubernetes resource parsing tests."""

import pytest

from repro.k8s import (ConfigMap, Deployment, ResourceError, Service,
                       parse_cpu, parse_memory, resource_from_manifest)


class TestQuantities:
    @pytest.mark.parametrize("text,millicores", [
        ("100m", 100), ("1", 1000), ("2", 2000), ("0.5", 500), (1, 1000),
    ])
    def test_cpu(self, text, millicores):
        assert parse_cpu(text) == millicores

    def test_bad_cpu(self):
        with pytest.raises(ResourceError):
            parse_cpu("lots")

    @pytest.mark.parametrize("text,mib", [
        ("128Mi", 128), ("1Gi", 1024), ("512Ki", 0), ("2Gi", 2048),
    ])
    def test_memory(self, text, mib):
        assert parse_memory(text) == mib

    def test_bad_memory(self):
        with pytest.raises(ResourceError):
            parse_memory("plenty")


def deployment_manifest(name="web", replicas=2):
    return {
        "apiVersion": "apps/v1",
        "kind": "Deployment",
        "metadata": {"name": name, "namespace": "test",
                     "labels": {"app": name}},
        "spec": {
            "replicas": replicas,
            "selector": {"matchLabels": {"app": name}},
            "template": {
                "metadata": {"labels": {"app": name,
                                        "component": "opcua-server"}},
                "spec": {
                    "containers": [{
                        "name": "main", "image": "img:1",
                        "ports": [{"containerPort": 4840}],
                        "env": [{"name": "X", "value": "1"}],
                        "resources": {"requests": {"cpu": "100m",
                                                   "memory": "128Mi"}},
                        "volumeMounts": [{"name": "config",
                                          "mountPath": "/etc"}],
                    }],
                    "volumes": [{"name": "config",
                                 "configMap": {"name": f"{name}-config"}}],
                },
            },
        },
    }


class TestDeployment:
    def test_parse(self):
        deployment = Deployment.from_dict(deployment_manifest())
        assert deployment.replicas == 2
        assert deployment.selector == {"app": "web"}
        assert deployment.containers[0].cpu_request_m == 100
        assert deployment.containers[0].memory_request_mi == 128
        assert deployment.containers[0].env == {"X": "1"}
        assert deployment.config_map_names() == ["web-config"]

    def test_missing_selector_rejected(self):
        manifest = deployment_manifest()
        del manifest["spec"]["selector"]
        with pytest.raises(ResourceError, match="matchLabels"):
            Deployment.from_dict(manifest)

    def test_selector_template_mismatch_rejected(self):
        manifest = deployment_manifest()
        manifest["spec"]["template"]["metadata"]["labels"] = {"app": "other"}
        with pytest.raises(ResourceError, match="does not match"):
            Deployment.from_dict(manifest)

    def test_no_containers_rejected(self):
        manifest = deployment_manifest()
        manifest["spec"]["template"]["spec"]["containers"] = []
        with pytest.raises(ResourceError, match="no containers"):
            Deployment.from_dict(manifest)

    def test_missing_name_rejected(self):
        manifest = deployment_manifest()
        del manifest["metadata"]["name"]
        with pytest.raises(ResourceError, match="no name"):
            Deployment.from_dict(manifest)


class TestOtherKinds:
    def test_configmap(self):
        config_map = ConfigMap.from_dict({
            "kind": "ConfigMap",
            "metadata": {"name": "c", "namespace": "n"},
            "data": {"config.json": "{}"},
        })
        assert config_map.data["config.json"] == "{}"
        assert config_map.metadata.key == ("n", "c")

    def test_service(self):
        service = Service.from_dict({
            "kind": "Service",
            "metadata": {"name": "s"},
            "spec": {"selector": {"app": "web"},
                     "ports": [{"port": 4840, "targetPort": 4840}]},
        })
        assert service.ports == [(4840, 4840)]

    def test_service_without_selector_rejected(self):
        with pytest.raises(ResourceError):
            Service.from_dict({"kind": "Service",
                               "metadata": {"name": "s"}, "spec": {}})

    def test_dispatch(self):
        resource = resource_from_manifest(deployment_manifest())
        assert isinstance(resource, Deployment)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ResourceError, match="unsupported"):
            resource_from_manifest({"kind": "CronJob",
                                    "metadata": {"name": "x"}})

    def test_non_dict_rejected(self):
        with pytest.raises(ResourceError):
            resource_from_manifest(["not", "a", "mapping"])
