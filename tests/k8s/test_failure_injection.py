"""Failure injection: node failures, pod deletion, self-healing.

The strongest check is on the full ICE-lab deployment: kill a node,
heal, and require the factory to be fully functional again (every
variable flowing, every service invocable).
"""

import json

import pytest

from repro.icelab import run_icelab
from repro.k8s import Cluster, ClusterError, heal
from repro.pipeline import smoke_test

from test_resources import deployment_manifest


def configmap_manifest(name="web-config"):
    return {
        "kind": "ConfigMap",
        "metadata": {"name": name, "namespace": "test"},
        "data": {"config.json": json.dumps({})},
    }


class TestNodeFailureBasics:
    def make_cluster(self):
        cluster = Cluster(nodes=2)
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=2))
        return cluster

    def test_fail_node_evicts_pods(self):
        cluster = self.make_cluster()
        victim = cluster.running_pods()[0].node
        evicted = cluster.fail_node(victim)
        assert evicted
        assert all(p.node != victim for p in cluster.running_pods())

    def test_reconcile_reschedules_on_surviving_nodes(self):
        cluster = self.make_cluster()
        victim = cluster.running_pods()[0].node
        cluster.fail_node(victim)
        cluster.reconcile_all()
        assert len(cluster.pods_for("web", "test")) == 2
        assert all(p.node != victim for p in cluster.running_pods())

    def test_offline_node_not_scheduled_until_recovery(self):
        cluster = self.make_cluster()
        victim = cluster.running_pods()[0].node
        cluster.fail_node(victim)
        cluster.reconcile_all()
        cluster.recover_node(victim)
        cluster.apply_manifest(configmap_manifest("web2-config"))
        cluster.apply_manifest(deployment_manifest(name="web2", replicas=2))
        # recovered node accepts pods again
        nodes_used = {p.node for p in cluster.running_pods()}
        assert victim in nodes_used or len(nodes_used) >= 1

    def test_unknown_node_rejected(self):
        cluster = self.make_cluster()
        with pytest.raises(ClusterError):
            cluster.fail_node("node-99")
        with pytest.raises(ClusterError):
            cluster.recover_node("node-99")

    def test_delete_pod_and_reconcile(self):
        cluster = self.make_cluster()
        pod = cluster.running_pods()[0]
        cluster.delete_pod(pod.metadata.name, pod.metadata.namespace)
        assert len(cluster.pods_for("web", "test")) == 1
        cluster.reconcile_all()
        assert len(cluster.pods_for("web", "test")) == 2

    def test_delete_unknown_pod(self):
        cluster = self.make_cluster()
        with pytest.raises(ClusterError):
            cluster.delete_pod("nope")

    def test_all_nodes_down_leaves_pods_pending(self):
        cluster = self.make_cluster()
        for node in cluster.nodes:
            cluster.fail_node(node.name)
        cluster.reconcile_all()
        assert cluster.stats()["pods_running"] == 0
        assert cluster.stats()["pods_pending"] == 2


class TestFactorySelfHealing:
    @pytest.fixture
    def deployed(self):
        result = run_icelab(smoke_steps=3, seed=3)
        yield result
        result.shutdown()

    def test_node_failure_then_heal_restores_function(self, deployed):
        cluster = deployed.cluster
        victim = cluster.running_pods()[0].node
        cluster.fail_node(victim)
        assert cluster.stats()["pods_running"] < 14
        outcome = heal(cluster)
        assert cluster.stats()["pods_running"] == 14
        assert cluster.stats()["pods_failed"] == 0
        assert outcome["running"] == 14
        # the factory is functional again, end to end
        smoke = smoke_test(deployed, steps=3)
        assert smoke.all_ok, smoke

    def test_server_pod_loss_cascades_to_bridges(self, deployed):
        cluster = deployed.cluster
        server_pod = next(p for p in cluster.running_pods()
                          if p.labels.get("component") == "opcua-server")
        cluster.delete_pod(server_pod.metadata.name,
                           server_pod.metadata.namespace)
        outcome = heal(cluster)
        assert outcome["restarted_downstream"] >= 8  # 4 clients + 4 hist
        smoke = smoke_test(deployed, steps=3)
        assert smoke.all_ok, smoke

    def test_historian_pod_loss_heals_without_cascade(self, deployed):
        cluster = deployed.cluster
        historian_pod = next(p for p in cluster.running_pods()
                             if p.labels.get("component") == "historian")
        cluster.delete_pod(historian_pod.metadata.name,
                           historian_pod.metadata.namespace)
        outcome = heal(cluster)
        assert outcome["restarted_downstream"] == 0
        assert cluster.stats()["pods_running"] == 14
        smoke = smoke_test(deployed, steps=3)
        assert smoke.all_ok, smoke
