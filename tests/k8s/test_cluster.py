"""Cluster simulator tests: controller, scheduler, services, components."""

import json

import pytest

from repro.k8s import Cluster, ClusterError

from test_resources import deployment_manifest  # same directory


def configmap_manifest(name="web-config", config=None):
    return {
        "kind": "ConfigMap",
        "metadata": {"name": name, "namespace": "test"},
        "data": {"config.json": json.dumps(config or {"hello": 1})},
    }


class TestDeploymentController:
    def test_pods_created_per_replicas(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=3))
        assert len(cluster.pods_for("web", "test")) == 3

    def test_pods_receive_mounted_config(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest(config={"x": 42}))
        cluster.apply_manifest(deployment_manifest())
        pod = cluster.pods_for("web", "test")[0]
        assert pod.config == {"x": 42}

    def test_missing_configmap_fails(self):
        cluster = Cluster()
        with pytest.raises(ClusterError, match="missing ConfigMap"):
            cluster.apply_manifest(deployment_manifest())

    def test_invalid_configmap_json_fails(self):
        cluster = Cluster()
        manifest = configmap_manifest()
        manifest["data"]["config.json"] = "{broken"
        cluster.apply_manifest(manifest)
        with pytest.raises(ClusterError, match="invalid"):
            cluster.apply_manifest(deployment_manifest())

    def test_scale_down_deletes_pods(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=3))
        cluster.apply_manifest(deployment_manifest(replicas=1))
        assert len(cluster.pods_for("web", "test")) == 1


class TestScheduler:
    def test_pods_spread_by_load(self):
        cluster = Cluster(nodes=2, cpu_per_node_m=1000)
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=2))
        nodes = {p.node for p in cluster.running_pods()}
        assert len(nodes) == 2  # least-loaded spreads them

    def test_unschedulable_pod_stays_pending(self):
        cluster = Cluster(nodes=1, cpu_per_node_m=150)
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=3))
        stats = cluster.stats()
        assert stats["pods_running"] == 1
        assert stats["pods_pending"] == 2

    def test_memory_capacity_respected(self):
        cluster = Cluster(nodes=1, memory_per_node_mi=200)
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=3))
        assert cluster.stats()["pods_running"] == 1


class TestServices:
    def test_endpoints_resolve_by_selector(self):
        cluster = Cluster()
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=2))
        cluster.apply_manifest({
            "kind": "Service",
            "metadata": {"name": "web", "namespace": "test"},
            "spec": {"selector": {"app": "web"},
                     "ports": [{"port": 4840}]},
        })
        assert len(cluster.endpoints("web", "test")) == 2

    def test_unknown_service(self):
        cluster = Cluster()
        with pytest.raises(ClusterError):
            cluster.endpoints("ghost")


class TestComponentFactory:
    def test_components_started_and_stopped(self):
        events = []

        class Recorder:
            def __init__(self, pod_name):
                self.pod_name = pod_name

            def start(self):
                events.append(("start", self.pod_name))

            def stop(self):
                events.append(("stop", self.pod_name))

        cluster = Cluster(component_factory=lambda pod, kind, config:
                          Recorder(pod.metadata.name))
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=1))
        assert [e[0] for e in events] == ["start"]
        cluster.shutdown()
        assert [e[0] for e in events] == ["start", "stop"]

    def test_component_crash_marks_pod_failed(self):
        def exploding_factory(pod, kind, config):
            raise RuntimeError("boom")

        cluster = Cluster(component_factory=exploding_factory)
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest(replicas=1))
        assert cluster.stats()["pods_failed"] == 1
        assert any("boom" in e for e in cluster.events)

    def test_component_kind_from_labels(self):
        seen = []
        cluster = Cluster(component_factory=lambda pod, kind, config:
                          seen.append(kind))
        cluster.apply_manifest(configmap_manifest())
        cluster.apply_manifest(deployment_manifest())
        assert seen == ["opcua-server", "opcua-server"]


class TestApplyYaml:
    def test_yaml_text_applied(self):
        from repro.yamlgen import emit_documents
        cluster = Cluster()
        text = emit_documents([configmap_manifest(),
                               deployment_manifest(replicas=1)])
        applied = cluster.apply_yaml(text)
        assert len(applied) == 2
        assert cluster.stats()["pods_running"] == 1
