"""Apply-step resilience: injected I/O faults retry instead of aborting
a rollout."""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.k8s import Cluster, deploy_manifests
from repro.obs import METRICS, snapshot_delta

CONFIGMAP_YAML = """kind: ConfigMap
metadata:
  name: web-config
  namespace: test
data:
  config.json: '{"hello": 1}'
"""


def _plan(**kwargs):
    return FaultPlan(seed=0, specs=(
        FaultSpec("k8s.apply", "io-error", **kwargs),))


class TestApplyRetries:
    def test_transient_io_faults_are_retried(self):
        cluster = Cluster()
        before = METRICS.snapshot()
        with _plan(probability=1.0, max_injections=2).activated():
            applied = deploy_manifests(
                cluster, {"configmap.yaml": CONFIGMAP_YAML})
        assert len(applied) == 1
        assert ("test", "web-config") in cluster.config_maps
        delta = snapshot_delta(before, METRICS.snapshot())
        assert delta["k8s.apply_retries"] == 2
        assert delta["k8s.documents_applied"] == 1

    def test_persistent_io_faults_surface_after_retries(self):
        cluster = Cluster()
        with _plan(probability=1.0).activated():
            with pytest.raises(Exception) as info:
                deploy_manifests(cluster,
                                 {"configmap.yaml": CONFIGMAP_YAML})
        assert getattr(info.value, "retriable", False)
