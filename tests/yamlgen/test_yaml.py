"""YAML emitter/parser tests, including round-trips on K8s-like docs."""

import pytest

from repro.yamlgen import (YamlEmitError, YamlParseError, emit,
                           emit_documents, needs_quoting, parse,
                           parse_documents, parse_scalar)


class TestScalars:
    @pytest.mark.parametrize("value,expected", [
        ("42", 42),
        ("-17", -17),
        ("3.14", 3.14),
        ("true", True),
        ("False", False),
        ("null", None),
        ("~", None),
        ("hello", "hello"),
        ('"quoted"', "quoted"),
        ("'single'", "single"),
        ("{}", {}),
        ("[]", []),
    ])
    def test_parse_scalar(self, value, expected):
        assert parse_scalar(value) == expected

    def test_escaped_double_quotes(self):
        assert parse_scalar('"a\\"b"') == 'a"b'

    def test_escaped_newline(self):
        assert parse_scalar('"a\\nb"') == "a\nb"

    def test_single_quote_doubling(self):
        assert parse_scalar("'it''s'") == "it's"


class TestNeedsQuoting:
    @pytest.mark.parametrize("text", [
        "true", "null", "123", "1.5", "", " pad", "pad ", "-dash",
        "a: b", "has#hash", "with\nnewline", "yes",
    ])
    def test_quoting_required(self, text):
        assert needs_quoting(text)

    @pytest.mark.parametrize("text", [
        "hello", "emco-server", "opcua_client", "CamelCase", "a.b.c",
    ])
    def test_no_quoting(self, text):
        assert not needs_quoting(text)


class TestEmit:
    def test_flat_mapping(self):
        assert emit({"a": 1, "b": "x"}) == "a: 1\nb: x\n"

    def test_nested_mapping(self):
        text = emit({"metadata": {"name": "emco"}})
        assert text == "metadata:\n  name: emco\n"

    def test_sequence_of_scalars(self):
        assert emit({"items": [1, 2]}) == "items:\n  - 1\n  - 2\n"

    def test_sequence_of_mappings(self):
        text = emit({"containers": [{"name": "c", "image": "i"}]})
        assert "- name: c" in text
        assert "    image: i" in text

    def test_empty_collections(self):
        assert emit({"a": {}, "b": []}) == "a: {}\nb: []\n"

    def test_special_string_quoted(self):
        assert emit({"v": "true"}) == 'v: "true"\n'

    def test_numeric_string_quoted(self):
        assert emit({"v": "123"}) == 'v: "123"\n'

    def test_unsupported_type_rejected(self):
        with pytest.raises(YamlEmitError):
            emit({"v": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(YamlEmitError):
            emit({1: "x"})


class TestParse:
    def test_mapping(self):
        assert parse("a: 1\nb: x\n") == {"a": 1, "b": "x"}

    def test_nested(self):
        assert parse("a:\n  b:\n    c: 3\n") == {"a": {"b": {"c": 3}}}

    def test_sequence(self):
        assert parse("- 1\n- 2\n") == [1, 2]

    def test_sequence_of_mappings(self):
        doc = parse("items:\n  - name: a\n    value: 1\n  - name: b\n")
        assert doc == {"items": [{"name": "a", "value": 1}, {"name": "b"}]}

    def test_comments_stripped(self):
        assert parse("a: 1  # trailing\n# full line\nb: 2\n") == \
            {"a": 1, "b": 2}

    def test_hash_inside_quotes_preserved(self):
        assert parse('a: "x # y"\n') == {"a": "x # y"}

    def test_empty_value_is_none(self):
        assert parse("a:\nb: 1\n") == {"a": None, "b": 1}

    def test_duplicate_key_rejected(self):
        with pytest.raises(YamlParseError):
            parse("a: 1\na: 2\n")

    def test_tab_indentation_rejected(self):
        with pytest.raises(YamlParseError):
            parse("a:\n\tb: 1\n")

    def test_multi_document(self):
        docs = parse_documents("---\na: 1\n---\nb: 2\n")
        assert docs == [{"a": 1}, {"b": 2}]

    def test_parse_rejects_multi_document(self):
        with pytest.raises(YamlParseError):
            parse("---\na: 1\n---\nb: 2\n")

    def test_empty_stream(self):
        assert parse_documents("") == []
        assert parse("") is None


K8S_DOC = {
    "apiVersion": "apps/v1",
    "kind": "Deployment",
    "metadata": {
        "name": "emco-opcua-server",
        "labels": {"app": "emco", "managed-by": "sysmlv2-factory-config"},
    },
    "spec": {
        "replicas": 1,
        "selector": {"matchLabels": {"app": "emco"}},
        "template": {
            "metadata": {"labels": {"app": "emco"}},
            "spec": {
                "containers": [{
                    "name": "opcua-server",
                    "image": "icelab/opcua-server:1.4.2",
                    "ports": [{"containerPort": 4840}],
                    "env": [
                        {"name": "CONFIG_PATH",
                         "value": "/etc/factory/config.json"},
                        {"name": "FLAG", "value": "true"},
                    ],
                }],
                "volumes": [],
            },
        },
    },
}


class TestRoundTrip:
    def test_k8s_deployment_roundtrip(self):
        assert parse(emit(K8S_DOC)) == K8S_DOC

    def test_multi_document_roundtrip(self):
        docs = [K8S_DOC, {"apiVersion": "v1", "kind": "Service",
                          "metadata": {"name": "emco"}}]
        assert parse_documents(emit_documents(docs)) == docs

    def test_double_roundtrip_stable(self):
        once = emit(parse(emit(K8S_DOC)))
        assert once == emit(K8S_DOC)

    @pytest.mark.parametrize("doc", [
        {"a": None},
        {"a": True, "b": False},
        {"a": -1.5e10},
        {"list": [[1, 2], [3]]},
        {"deep": {"er": {"est": [{"x": {"y": 1}}]}}},
        {"quoted": 'tricky: "value" # here'},
        {"newline": "line1\nline2"},
    ])
    def test_assorted_roundtrips(self, doc):
        assert parse(emit(doc)) == doc
