"""Property-based tests: YAML round-trip over random document shapes."""

from hypothesis import given, settings, strategies as st

from repro.yamlgen import emit, emit_documents, parse, parse_documents

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e9, max_value=1e9),
    st.text(st.characters(blacklist_categories=("Cs", "Cc")), max_size=25),
)

keys = st.text(
    st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                  whitelist_characters="_-"),
    min_size=1, max_size=12)

documents = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=25,
)


def normalize(value):
    """-0.0 and 0.0 compare equal but emit differently; normalize."""
    if isinstance(value, float) and value == 0.0:
        return 0.0
    if isinstance(value, list):
        return [normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: normalize(v) for k, v in value.items()}
    return value


@settings(max_examples=200, deadline=None)
@given(st.dictionaries(keys, documents, min_size=1, max_size=5))
def test_mapping_roundtrip(document):
    assert normalize(parse(emit(document))) == normalize(document)


@settings(max_examples=100, deadline=None)
@given(st.lists(documents, max_size=4))
def test_sequence_roundtrip(items):
    document = {"items": items}
    assert normalize(parse(emit(document))) == normalize(document)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.dictionaries(keys, documents, min_size=1, max_size=3),
                min_size=1, max_size=3))
def test_multi_document_roundtrip(docs):
    text = emit_documents(docs)
    assert normalize(parse_documents(text)) == normalize(docs)


@settings(max_examples=200, deadline=None)
@given(st.text(st.characters(blacklist_categories=("Cs", "Cc")),
               max_size=40))
def test_any_string_value_survives(value):
    assert parse(emit({"v": value}))["v"] == value


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(keys, documents, min_size=1, max_size=4))
def test_emit_is_deterministic_and_stable(document):
    once = emit(document)
    assert emit(parse(once)) == once
