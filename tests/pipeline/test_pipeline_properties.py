"""Property-based tests over randomly generated factories.

The strongest invariants of the reproduction hold for *any* machine
inventory, not just the ICE lab: generated models must validate, the
port identity (ports = 2x points) must hold, every variable must appear
in exactly one client subscription, and the generated manifests must be
deployable.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.codegen import PipelineOptions, generate_configuration
from repro.icelab.model_gen import load_icelab_model
from repro.isa95.levels import VariableSpec
from repro.machines.catalog import DriverSpec, MachineSpec, simple_service
from repro.sysml import validate_model

names = st.text(string.ascii_lowercase, min_size=3, max_size=8)


@st.composite
def machine_specs(draw):
    count = draw(st.integers(1, 4))
    specs = []
    used: set[str] = set()
    for index in range(count):
        name = draw(names.filter(lambda n: n not in used))
        used.add(name)
        n_vars = draw(st.integers(1, 12))
        n_svcs = draw(st.integers(1, 4))
        categories = {"Data": [VariableSpec(f"v{i}", draw(st.sampled_from(
            ["Real", "Integer", "Boolean", "String"])))
            for i in range(n_vars)]}
        specs.append(MachineSpec(
            name=name,
            display_name=name.title(),
            type_name=name.title() + "Machine",
            workcell=f"cell{draw(st.integers(1, 2))}",
            driver=DriverSpec(
                protocol="OPCUADriver", is_generic=True,
                parameters={"endpoint":
                            f"opc.tcp://10.9.{index}.1:4840"}),
            categories=categories,
            services=[simple_service(f"svc{i}") for i in range(n_svcs)],
        ))
    return specs


@settings(max_examples=25, deadline=None)
@given(machine_specs())
def test_generated_models_always_validate(specs):
    model = load_icelab_model(specs)
    report = validate_model(model)
    assert report.ok, str(report)[:500]


@settings(max_examples=25, deadline=None)
@given(machine_specs(), st.integers(5, 200))
def test_generation_invariants(specs, capacity):
    model = load_icelab_model(specs)
    result = generate_configuration(
        model, options=PipelineOptions(capacity=capacity))
    total_vars = sum(s.variable_count for s in specs)
    total_svcs = sum(s.service_count for s in specs)

    # every machine got a config; every workcell with machines a server
    assert len(result.machine_configs) == len(specs)
    assert set(result.server_configs) == {s.workcell for s in specs}

    # every variable subscribed exactly once across all clients
    subscriptions = [s["node_id"] for c in result.client_configs
                     for m in c["machines"] for s in m["subscriptions"]]
    assert len(subscriptions) == total_vars
    assert len(set(subscriptions)) == total_vars

    # every service served exactly once
    methods = [m["node_id"] for c in result.client_configs
               for machine in c["machines"] for m in machine["methods"]]
    assert len(methods) == len(set(methods)) == total_svcs

    # manifests parse and reference existing config maps
    from repro.yamlgen import parse_documents
    config_map_names = set()
    deployment_mounts = []
    for text in result.manifests.values():
        for document in parse_documents(text):
            if document["kind"] == "ConfigMap":
                config_map_names.add(document["metadata"]["name"])
            elif document["kind"] == "Deployment":
                volumes = document["spec"]["template"]["spec"]["volumes"]
                for volume in volumes:
                    deployment_mounts.append(
                        volume["configMap"]["name"])
    assert set(deployment_mounts) <= config_map_names


@settings(max_examples=15, deadline=None)
@given(machine_specs())
def test_port_identity_for_any_factory(specs):
    """ports = 2 x (variables + services) — the Table-I structural law."""
    from repro.diagrams import measure_connections
    model = load_icelab_model(specs)
    for spec in specs:
        figure = measure_connections(model, spec.name,
                                     f"{spec.name}DriverInstance")
        assert figure.total_ports == 2 * spec.point_count
        assert figure.balanced


def test_port_identity_for_reserved_machine_names():
    """Machines named like ISA95 `ref part` members still measure.

    `ISA95::Machine` declares `ref part driver : Driver` and
    `Workcell` declares `ref part machines : Machine [*]`; a machine
    whose name collides with those placeholders must still resolve to
    its concrete workcell part (Hypothesis-discovered regression).
    """
    from repro.diagrams import measure_connections
    specs = [MachineSpec(
        name=name,
        display_name=name.title(),
        type_name=name.title() + "Machine",
        workcell="cell1",
        driver=DriverSpec(protocol="OPCUADriver", is_generic=True,
                          parameters={"endpoint":
                                      f"opc.tcp://10.9.{i}.1:4840"}),
        categories={"Data": [VariableSpec("v0", "Real")]},
        services=[simple_service("svc0")],
    ) for i, name in enumerate(["driver", "machines"])]
    model = load_icelab_model(specs)
    for spec in specs:
        figure = measure_connections(
            model, spec.name, f"{spec.name}DriverInstance")
        assert figure.total_ports == 2 * spec.point_count
        assert figure.balanced
