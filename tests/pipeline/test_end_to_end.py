"""End-to-end (Figure 1) and Table I report tests.

The full ICE-lab deployment is exercised once per test session (it
stands up 10 machines, 6 UA servers, 4 bridges, 4 historians on the
simulated cluster) and inspected from many angles.
"""

import pytest

from repro.icelab import run_icelab
from repro.som import ProductionProcess


@pytest.fixture(scope="module")
def deployed():
    result = run_icelab(smoke_steps=5, seed=42)
    yield result
    result.shutdown()


class TestDeployment:
    def test_all_pods_running(self, deployed):
        stats = deployed.cluster.stats()
        assert stats["pods_failed"] == 0
        assert stats["pods_pending"] == 0
        assert stats["pods_running"] == 14  # 6 servers + 4 clients + 4 hist

    def test_smoke_all_ok(self, deployed):
        assert deployed.smoke.all_ok

    def test_every_variable_flows_to_database(self, deployed):
        assert deployed.smoke.variables_flowing == 498
        assert deployed.smoke.machines_with_data == 10

    def test_every_machine_service_invocable(self, deployed):
        assert deployed.smoke.services_invoked == 10
        assert deployed.smoke.services_failed == 0

    def test_six_ua_servers_listening(self, deployed):
        # workcell endpoints, plus the 8 machine-side servers of the
        # generic-OPC UA machines
        endpoints = deployed.world.network.endpoints()
        workcell_endpoints = [e for e in endpoints if "workcell" in e]
        assert len(workcell_endpoints) == 6

    def test_data_tagged_with_isa95_coordinates(self, deployed):
        series = deployed.world.store.series(
            "machine_data", tags={"machine": "emco"})
        assert series
        assert all(s.tags["workcell"] == "workcell02" for s in series)


class TestServiceInvocation:
    def test_direct_invoke(self, deployed):
        outputs = deployed.orchestrator.invoke("emco", "is_ready")
        assert outputs == [True] or outputs == [False]

    def test_invoke_with_arguments(self, deployed):
        outputs = deployed.orchestrator.invoke("conveyor", "route_pallet",
                                               7, 12)
        assert outputs == [True]

    def test_production_process_across_machines(self, deployed):
        process = (ProductionProcess("assemble-and-check")
                   .add_step("warehouse", "fetch_tray", 4)
                   .add_step("kairos2", "move_to", 0.5, 1.5)
                   .add_step("ur5", "load_program", "pick")
                   .add_step("ur5", "play")
                   .add_step("siemensPlc", "start_cycle")
                   .add_step("qcPc", "inspect", "unit-1"))
        result = deployed.orchestrator.execute(process)
        assert result.ok
        assert result.completed_steps == 6

    def test_process_effects_visible_in_machine(self, deployed):
        deployed.orchestrator.invoke("ur5", "play")
        assert deployed.world.simulators["ur5"].read("is_running") is True
        deployed.orchestrator.invoke("ur5", "stop")
        assert deployed.world.simulators["ur5"].read("is_running") is False


class TestTable1Report:
    @pytest.fixture(scope="class")
    def report(self, deployed):
        from repro.pipeline import build_table1_report
        return build_table1_report(deployed.model, deployed.topology,
                                   deployed.generation)

    def test_rows_for_all_machines(self, report):
        assert len(report.rows) == 10

    def test_port_instances_double_the_points(self, report):
        # the modeling strategy yields a machine-side and a driver-side
        # port per data point — exactly the paper's numbers for EMCO,
        # UR5e, PLC, QC PC, warehouse, SPEA and conveyor
        for machine, expected in [("emco", 106), ("ur5", 206),
                                  ("siemensPlc", 68), ("qcPc", 30),
                                  ("warehouse", 16), ("spea", 16),
                                  ("conveyor", 612)]:
            assert report.row(machine).port_instances == expected, machine

    def test_variables_services_columns(self, report):
        row = report.row("conveyor")
        assert row.machine_variables == 296
        assert row.machine_services == 10

    def test_conveyor_dominates_counts(self, report):
        conveyor = report.row("conveyor")
        for row in report.rows:
            if row.machine == "conveyor":
                continue
            assert conveyor.attribute_instances >= row.attribute_instances
            assert conveyor.port_instances >= row.port_instances

    def test_attribute_ratio_in_paper_band(self, report):
        # paper ratios: 4.0 (conveyor) .. 6.2 (SPEA); ours must stay in
        # the same modeling regime (a few attributes per data point)
        for row in report.rows:
            points = row.machine_variables + row.machine_services
            ratio = row.attribute_instances / points
            assert 2.0 <= ratio <= 8.0, (row.machine, ratio)

    def test_summary_row(self, report):
        assert report.opcua_servers == 6
        assert report.opcua_clients == 4
        assert report.generation_time_s < 30
        assert 200 <= report.config_size_kb <= 1500

    def test_render_contains_all_machines(self, report):
        text = report.render()
        for machine in ("emco", "ur5", "conveyor"):
            assert machine in text
        assert "OPC UA servers: 6" in text

    def test_row_lookup_missing(self, report):
        with pytest.raises(KeyError):
            report.row("ghost")


class TestDiagrams:
    def test_figure1_renders(self, deployed):
        from repro.diagrams import overview_ascii, overview_dot
        dot = overview_dot(deployed.generation)
        assert "digraph methodology" in dot
        assert "10 machines" in dot
        ascii_art = overview_ascii(deployed.generation)
        assert "SysML v2 model" in ascii_art
        assert "6 UA servers" in ascii_art

    def test_figure2_measures_emco(self, deployed):
        from repro.diagrams import (connections_ascii, connections_dot,
                                    measure_connections)
        figure = measure_connections(deployed.model, "emco",
                                     "emcoDriverInstance")
        assert figure.machine_data_ports == 34
        assert figure.machine_service_ports == 19
        assert figure.driver_variable_ports == 34
        assert figure.driver_method_ports == 19
        assert figure.balanced
        assert figure.total_ports == 106  # the Table-I EMCO cell
        assert "EMCODriver" in connections_dot(figure)
        assert "balanced: True" in connections_ascii(figure)

    def test_figure2_unknown_machine(self, deployed):
        from repro.diagrams import measure_connections
        with pytest.raises(KeyError):
            measure_connections(deployed.model, "ghost", "emcoDriver")
