"""The pipeline's recovery handlers catch *expected* failures only.

``smoke_test`` and the conformance checks used to wrap their probes in
bare ``except Exception`` — which also swallowed genuine bugs
(AttributeError from an API drift, MemoryError from a leak) and
reported them as routine findings. These tests pin the narrowed
contract: typed domain errors are counted, everything else propagates.
"""

from types import SimpleNamespace

import pytest

from repro.opcua import AddressSpaceError
from repro.pipeline.run import SmokeReport, smoke_test
from repro.pipeline.verify import ConformanceReport, _check_address_spaces
from repro.som import OrchestrationError, ServiceLookupError


def _machine(name="mill01", workcell="cellA"):
    service = SimpleNamespace(
        name="drill", inputs=[SimpleNamespace(data_type="Integer")])
    return SimpleNamespace(name=name, workcell=workcell,
                           variables=[], services=[service])


def _smoke_result(invoke):
    """The minimal duck-typed EndToEndResult smoke_test consumes."""
    store = SimpleNamespace(series=lambda *_a, **_k: [],
                            stats=lambda: {"points": 0})
    return SimpleNamespace(
        cluster=SimpleNamespace(stats=lambda: {
            "pods_running": 0, "pods_failed": 0, "pods_pending": 0}),
        topology=SimpleNamespace(machines=[_machine()]),
        world=SimpleNamespace(step=lambda: None, store=store),
        orchestrator=SimpleNamespace(invoke=invoke))


class TestSmokeTestNarrowing:
    def test_orchestration_error_counts_as_failed(self):
        def invoke(*_args):
            raise OrchestrationError("service unreachable")
        report = smoke_test(_smoke_result(invoke), steps=0)
        assert isinstance(report, SmokeReport)
        assert report.services_failed == 1
        assert report.services_invoked == 0

    def test_service_lookup_error_counts_as_failed(self):
        def invoke(*_args):
            raise ServiceLookupError("no such service")
        report = smoke_test(_smoke_result(invoke), steps=0)
        assert report.services_failed == 1

    def test_memory_error_propagates(self):
        def invoke(*_args):
            raise MemoryError("allocator exhausted")
        with pytest.raises(MemoryError):
            smoke_test(_smoke_result(invoke), steps=0)

    def test_keyboard_interrupt_propagates(self):
        def invoke(*_args):
            raise KeyboardInterrupt()
        with pytest.raises(KeyboardInterrupt):
            smoke_test(_smoke_result(invoke), steps=0)

    def test_harness_bugs_propagate(self):
        # an AttributeError is an API drift in *our* code, not a
        # failing factory service — it must surface, not be counted
        def invoke(*_args):
            raise AttributeError("Orchestrator.invoke renamed")
        with pytest.raises(AttributeError):
            smoke_test(_smoke_result(invoke), steps=0)


def _verify_result(browse_path):
    space = SimpleNamespace(browse_path=browse_path)
    server = SimpleNamespace(space=space)
    network = SimpleNamespace(lookup=lambda _endpoint: server)
    machine = _machine()
    machine.variables = [SimpleNamespace(name="temp",
                                         data_type="Double")]
    return SimpleNamespace(
        topology=SimpleNamespace(machines=[machine]),
        world=SimpleNamespace(network=network))


class TestVerifyNarrowing:
    def test_missing_node_is_a_finding(self):
        def browse_path(_path):
            raise AddressSpaceError("no such browse path")
        report = ConformanceReport()
        _check_address_spaces(_verify_result(browse_path), report)
        assert not report.ok
        assert {finding.check for finding in report.findings} \
            == {"variable-node", "method-node"}

    def test_memory_error_propagates(self):
        def browse_path(_path):
            raise MemoryError("address space mmap failed")
        with pytest.raises(MemoryError):
            _check_address_spaces(_verify_result(browse_path),
                                  ConformanceReport())

    def test_keyboard_interrupt_propagates(self):
        def browse_path(_path):
            raise KeyboardInterrupt()
        with pytest.raises(KeyboardInterrupt):
            _check_address_spaces(_verify_result(browse_path),
                                  ConformanceReport())
