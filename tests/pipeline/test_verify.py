"""Model-vs-deployment conformance tests (the paper's consistency claim)."""

import pytest

from repro.icelab import run_icelab
from repro.isa95.levels import VariableSpec
from repro.pipeline import verify_conformance


@pytest.fixture(scope="module")
def deployed():
    result = run_icelab(smoke_steps=4, seed=13)
    yield result
    result.shutdown()


class TestConsistentDeployment:
    def test_fresh_deployment_is_conformant(self, deployed):
        report = verify_conformance(deployed)
        assert report.ok, report.render()

    def test_all_quantities_checked(self, deployed):
        report = verify_conformance(deployed)
        assert report.checked_variables == 498
        assert report.checked_methods == 66
        assert report.checked_services == 66
        assert report.checked_pods == 14

    def test_render_ok(self, deployed):
        text = verify_conformance(deployed).render()
        assert "consistent" in text


class TestDriftDetection:
    def test_missing_server_detected(self, deployed):
        # take workcell01's server down
        from repro.codegen.machine_config import workcell_endpoint
        server = deployed.world.network.lookup(
            workcell_endpoint("workCell01"))
        server.stop()
        try:
            report = verify_conformance(deployed, require_data=False)
            assert not report.ok
            assert any(f.check == "variable-node"
                       and "no OPC UA server" in f.message
                       for f in report.findings)
        finally:
            server.start()

    def test_model_extension_detected_as_missing_node(self, deployed):
        # add a variable to the *model topology* without redeploying
        machine = deployed.topology.machine("warehouse")
        machine.variables.append(VariableSpec("ghost_sensor", "Real"))
        try:
            report = verify_conformance(deployed, require_data=False)
            assert any(f.check == "variable-node"
                       and "ghost_sensor" in f.subject
                       for f in report.findings)
        finally:
            machine.variables.pop()

    def test_orphan_node_detected(self, deployed):
        # add a UA node the model does not know about
        from repro.codegen.machine_config import workcell_endpoint
        server = deployed.world.network.lookup(
            workcell_endpoint("workCell05"))
        data = server.space.browse_path("warehouse/data")
        node = server.add_variable(data, "rogue", data_type="Real",
                                   namespace=2)
        try:
            report = verify_conformance(deployed, require_data=False)
            assert any(f.check == "orphan-node" and "rogue" in f.subject
                       for f in report.findings)
        finally:
            data.children.remove(node)
            server.space._nodes.pop(node.node_id, None)

    def test_missing_responder_detected(self, deployed):
        # disconnect one bridge: its services lose their responders
        bridge_pod = next(p for p in deployed.cluster.running_pods()
                          if p.labels.get("component") == "opcua-client")
        bridge_pod.component.broker_client.disconnect()
        try:
            report = verify_conformance(deployed, require_data=False)
            assert any(f.check == "service-responder"
                       for f in report.findings)
        finally:
            # restore by redeploying the bridge
            from repro.k8s import heal
            deployed.cluster.delete_pod(bridge_pod.metadata.name,
                                        bridge_pod.metadata.namespace)
            heal(deployed.cluster)

    def test_pod_shortfall_detected(self, deployed):
        pod = deployed.cluster.running_pods()[0]
        deployed.cluster.delete_pod(pod.metadata.name,
                                    pod.metadata.namespace)
        try:
            report = verify_conformance(deployed, require_data=False)
            assert any(f.check == "pod-per-component"
                       for f in report.findings)
        finally:
            from repro.k8s import heal
            heal(deployed.cluster)

    def test_deployment_conformant_again_after_healing(self, deployed):
        report = verify_conformance(deployed, require_data=False)
        assert report.ok, report.render()
