"""Configure *your own* factory from a machine catalog.

The ICE Laboratory is just one instance: this example builds a
different plant — a small bottling line — purely from
:class:`~repro.machines.catalog.MachineSpec` records, lets the library
generate the SysML v2 model, and runs the identical pipeline end to end
(deployment and functional check included). Nothing here is specific to
the paper's lab: this is the reusable API a downstream user would call.

Run with:  python examples/custom_factory.py
"""

from repro.isa95.levels import VariableSpec
from repro.machines.catalog import DriverSpec, MachineSpec, simple_service
from repro.pipeline import run_factory
from repro.som import ProductionProcess

FILLER = MachineSpec(
    name="filler",
    display_name="Rotary Bottle Filler",
    type_name="RotaryFiller",
    workcell="fillingCell",
    driver=DriverSpec(protocol="OPCUADriver", is_generic=True,
                      parameters={"endpoint": "opc.tcp://10.1.0.11:4840"}),
    categories={
        "Filling": [
            VariableSpec("fill_level", "Real", unit="ml"),
            VariableSpec("flow_rate", "Real", unit="ml/s"),
            VariableSpec("bottles_filled", "Integer"),
            VariableSpec("valve_open", "Boolean"),
        ],
        "Status": [
            VariableSpec("state", "String"),
            VariableSpec("alarm", "Boolean"),
        ],
    },
    services=[
        simple_service("start_filling"),
        simple_service("stop_filling"),
        simple_service("set_target_volume", inputs=[("ml", "Real")]),
    ],
)

CAPPER = MachineSpec(
    name="capper",
    display_name="Capping Station",
    type_name="CappingStation",
    workcell="fillingCell",
    driver=DriverSpec(protocol="OPCUADriver", is_generic=True,
                      parameters={"endpoint": "opc.tcp://10.1.0.12:4840"}),
    categories={
        "Capping": [
            VariableSpec("torque", "Real", unit="Nm"),
            VariableSpec("caps_applied", "Integer"),
            VariableSpec("cap_feeder_level", "Real", unit="%"),
        ],
    },
    services=[
        simple_service("apply_cap"),
        simple_service("set_torque", inputs=[("nm", "Real")]),
    ],
)

LABELER = MachineSpec(
    name="labeler",
    display_name="Label Applicator",
    type_name="LabelApplicator",
    workcell="packagingCell",
    driver=DriverSpec(protocol="OPCUADriver", is_generic=True,
                      parameters={"endpoint": "opc.tcp://10.1.0.21:4840"}),
    categories={
        "Labeling": [
            VariableSpec("labels_applied", "Integer"),
            VariableSpec("label_roll_remaining", "Real", unit="%"),
            VariableSpec("alignment_offset", "Real", unit="mm"),
        ],
    },
    services=[
        simple_service("apply_label"),
        simple_service("load_design", inputs=[("design", "String")]),
    ],
)


def main() -> None:
    specs = [FILLER, CAPPER, LABELER]
    print("running the full pipeline on a 3-machine bottling plant...\n")
    result = run_factory(specs, namespace="bottling", smoke_steps=4)

    print("== generated configuration ==")
    for key, value in result.generation.summary().items():
        print(f"  {key:>20}: {value}")

    print("\n== deployment ==")
    smoke = result.smoke
    print(f"  pods running: {smoke.pods_running} "
          f"(failed {smoke.pods_failed})")
    print(f"  variables flowing: {smoke.variables_flowing}"
          f"/{smoke.variables_total}")
    print(f"  factory {'OPERATIONAL' if smoke.all_ok else 'BROKEN'}")

    print("\n== run a bottling recipe over the broker ==")
    recipe = (ProductionProcess("bottle-500ml")
              .add_step("filler", "set_target_volume", 500.0)
              .add_step("filler", "start_filling")
              .add_step("filler", "stop_filling")
              .add_step("capper", "set_torque", 2.2)
              .add_step("capper", "apply_cap")
              .add_step("labeler", "load_design", "spring-water")
              .add_step("labeler", "apply_label"))
    outcome = result.orchestrator.execute(recipe)
    for step in outcome.steps:
        print(f"  {step.step.qualified_name:<28} "
              f"{'ok' if step.ok else 'FAILED'} {step.outputs}")
    print(f"recipe {'completed' if outcome.ok else 'failed'} "
          f"({outcome.completed_steps}/{len(recipe)} steps)")

    print("\n== what the database saw ==")
    store = result.world.store
    print(f"  series: {store.series_count}, "
          f"points: {store.stats()['points']}")
    latest = store.latest("machine_data",
                          tags={"machine": "filler",
                                "variable": "bottles_filled"})
    print(f"  latest filler.bottles_filled = {latest.value!r}")

    result.shutdown()


if __name__ == "__main__":
    main()
