"""Working with SysML v2 models directly: parse, query, print, interchange.

Shows the front-end API on the paper's running example (the EMCO milling
workcell): navigation, specialization queries, instance elaboration with
binding propagation, the pretty-printer, and the JSON interchange
format.

Run with:  python examples/model_inspection.py
"""

import json

from repro.icelab import icelab_model
from repro.sysml import (elaborate, model_to_dict, print_element,
                         propagate_bindings, specializations_of,
                         usages_typed_by)


def main() -> None:
    model = icelab_model()

    print("== navigate by qualified name ==")
    emco_driver_def = model.find("EMCOMillingMachineLib::EMCODriver")
    print(f"found: {emco_driver_def.qualified_name} "
          f"(abstract={emco_driver_def.is_abstract})")
    print(f"specializes: "
          f"{[t.qualified_name for t in emco_driver_def.all_supertypes()]}")

    print("\n== who specializes the abstract Driver? ==")
    driver_def = model.find("ISA95::Driver")
    names = sorted({d.name for d in specializations_of(model, driver_def)})
    print(", ".join(names))

    print("\n== which usages instantiate Machine? ==")
    machine_def = model.find("ISA95::Machine")
    machines = [u.name for u in usages_typed_by(model, machine_def)
                if u.owner is not None and u.owner.name
                and u.owner.name.startswith("workCell")]
    print(machines)

    print("\n== elaborate the emco driver instance ==")
    driver_instance = next(e for e in model.owned_elements
                           if e.name == "emcoDriverInstance")
    tree = elaborate(driver_instance)
    propagated = propagate_bindings(tree)
    print(f"instance tree: {sum(1 for _ in tree.walk())} nodes, "
          f"{propagated} values propagated over binds")
    params = tree.child("driverParameters")
    for attribute in params.children:
        print(f"  parameter {attribute.name} = {attribute.value!r}")

    print("\n== pretty-print one definition ==")
    print(print_element(model.find(
        "EMCOMillingMachineLib::EMCODriver::EMCODriverParameters")))

    print("== JSON interchange (excerpt) ==")
    data = model_to_dict(model)
    emco_lib = next(e for e in data["ownedElements"]
                    if e.get("name") == "EMCOMillingMachineLib")
    print(json.dumps(emco_lib, indent=2)[:800])
    print("...")


if __name__ == "__main__":
    main()
