"""Scheduling a batch of production jobs over the deployed factory.

Demonstrates the SOM promise end-to-end: production processes are plain
sequences of machine services, so a batch of jobs can be *scheduled*
(machines execute one service at a time, process order preserved) and
then dispatched through the message broker to the deployed stack.

Run with:  python examples/production_scheduling.py
"""

from repro.icelab import run_icelab
from repro.som import ProductionProcess, Scheduler


def make_jobs() -> list[ProductionProcess]:
    """Three part-machining jobs plus a logistics job, all contending
    for the warehouse, the AGVs and the mill."""
    job_a = (ProductionProcess("part-A")
             .add_step("warehouse", "fetch_tray", 1)
             .add_step("kairos1", "move_to", 2.0, 1.0)
             .add_step("kairos1", "pick", "blank-A")
             .add_step("emco", "load_program", "part_a.nc")
             .add_step("emco", "start_program")
             .add_step("qcPc", "inspect", "part-A"))
    job_b = (ProductionProcess("part-B")
             .add_step("warehouse", "fetch_tray", 2)
             .add_step("kairos1", "pick", "blank-B")
             .add_step("emco", "load_program", "part_b.nc")
             .add_step("emco", "start_program")
             .add_step("qcPc", "inspect", "part-B"))
    job_c = (ProductionProcess("assembly")
             .add_step("warehouse", "fetch_tray", 3)
             .add_step("kairos2", "pick", "housing")
             .add_step("ur5", "load_program", "assemble")
             .add_step("ur5", "play")
             .add_step("siemensPlc", "start_cycle")
             .add_step("fiam", "start_tightening"))
    job_d = (ProductionProcess("logistics")
             .add_step("conveyor", "register_pallet", 42)
             .add_step("conveyor", "route_pallet", 42, 6)
             .add_step("kairos2", "dock"))
    return [job_a, job_b, job_c, job_d]


def main() -> None:
    print("deploying the ICE lab...")
    result = run_icelab(smoke_steps=2, seed=11)

    jobs = make_jobs()
    # milling takes longer than a pick or a routing command
    scheduler = Scheduler(durations={
        "emco.start_program": 4.0,
        "ur5.play": 3.0,
        "qcPc.inspect": 2.0,
    })

    print("\n== schedule ==")
    schedule = scheduler.schedule(jobs)
    print(schedule.render())
    assert schedule.validate() == []

    print("\n== dispatch over the broker ==")
    outcome = scheduler.execute(jobs, result.orchestrator)
    print(f"executed {outcome['executed']} steps "
          f"({outcome['failed']} failed), "
          f"makespan {outcome['makespan']:g} slots")

    print("\n== machine contention ==")
    for machine in ("warehouse", "emco", "kairos1"):
        slots = schedule.for_machine(machine)
        print(f"  {machine}: {len(slots)} booked slots, busy "
              f"{sum(s.end - s.start for s in slots):g} of "
              f"{schedule.makespan:g}")

    result.shutdown()


if __name__ == "__main__":
    main()
