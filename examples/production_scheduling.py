"""Scheduling a batch of production jobs with the scenario engine.

The order book is four explicit part recipes over the ICE lab's
machines. Instead of ad-hoc slot scheduling, the batch runs through
``repro.sim``: the discrete-event engine books every machine (one
service at a time, route order preserved), service durations come from
the configuration itself (:class:`ServiceTimeModel`), and the resulting
schedule is dispatched step by step through the message broker to the
deployed stack. A what-if pass then re-simulates the same book under a
mill slowdown — prediction before deployment, the scenario engine's
whole point.

Run with:  python examples/production_scheduling.py
"""

from repro.icelab import run_icelab
from repro.sim import (FactorySimulation, Job, JobStep, ScenarioReport,
                       ServiceTimeModel, Slowdown, Workload, units)

#: (job, route) — each stop is (machine, service, *broker args).
RECIPES = {
    "part-A": [("warehouse", "fetch_tray", 1),
               ("kairos1", "move_to", 2.0, 1.0),
               ("emco", "load_program", "part_a.nc"),
               ("emco", "start_program"),
               ("qcPc", "inspect", "part-A")],
    "part-B": [("warehouse", "fetch_tray", 2),
               ("kairos1", "pick", "blank-B"),
               ("emco", "load_program", "part_b.nc"),
               ("emco", "start_program"),
               ("qcPc", "inspect", "part-B")],
    "assembly": [("warehouse", "fetch_tray", 3),
                 ("kairos2", "pick", "housing"),
                 ("ur5", "load_program", "assemble"),
                 ("ur5", "play"),
                 ("siemensPlc", "start_cycle"),
                 ("fiam", "start_tightening")],
    "logistics": [("conveyor", "register_pallet", 42),
                  ("conveyor", "route_pallet", 42, 6),
                  ("kairos2", "dock")],
}

#: Milling and long-running programs dominate; everything else uses
#: the configuration-derived default durations.
OVERRIDES = {"emco.start_program": 4.0, "ur5.play": 3.0,
             "qcPc.inspect": 2.0}


def make_workload(times: ServiceTimeModel) -> Workload:
    jobs = []
    for name, route in RECIPES.items():
        steps = tuple(JobStep(machine, service,
                              times.duration(machine, service))
                      for machine, service, *_ in route)
        work = sum(step.duration for step in steps)
        jobs.append(Job(name=name, steps=steps, due=work * 2))
    return Workload(jobs)


def simulate(workload: Workload, **perturbations) -> ScenarioReport:
    outcome = FactorySimulation(workload, **perturbations).run()
    return ScenarioReport.from_outcome(
        outcome, scenario="order-book", description="", seed=0)


def main() -> None:
    print("deploying the ICE lab...")
    result = run_icelab(smoke_steps=2, seed=11)
    times = ServiceTimeModel(result.topology, overrides=OVERRIDES)
    workload = make_workload(times)

    print("\n== simulated schedule ==")
    outcome = FactorySimulation(workload).run()
    for entry in sorted(outcome.schedule,
                        key=lambda e: (e.start, e.machine)):
        print(f"  t={units(entry.start):6.2f}  {entry.machine:>10}  "
              f"{entry.job}/{entry.service}")
    print(f"makespan {units(outcome.makespan):g}")

    print("\n== dispatch over the broker ==")
    args_by_step = {(name, index): tuple(rest)
                    for name, route in RECIPES.items()
                    for index, (_, _, *rest) in enumerate(route)}
    executed = failed = 0
    for entry in sorted(outcome.schedule, key=lambda e: e.start):
        arguments = args_by_step[(entry.job, entry.step_index)]
        try:
            result.orchestrator.invoke(entry.machine, entry.service,
                                       *arguments)
            executed += 1
        except Exception as error:
            failed += 1
            print(f"  {entry.job}/{entry.service} failed: {error}")
    print(f"executed {executed} steps ({failed} failed)")

    print("\n== machine contention ==")
    report = simulate(workload)
    for machine in report.machines:
        if machine.steps:
            print(f"  {machine.name:>10}: {machine.steps} steps, "
                  f"busy {units(machine.busy):g} of "
                  f"{units(report.makespan):g}")

    print("\n== what-if: the mill runs at half speed ==")
    degraded = simulate(workload, slowdowns=(
        Slowdown("emco", 0, outcome.makespan * 2, num=2, den=1),))
    print(f"makespan {units(report.makespan):g} -> "
          f"{units(degraded.makespan):g}, late jobs "
          f"{report.late_jobs} -> {degraded.late_jobs}")

    result.shutdown()


if __name__ == "__main__":
    main()
