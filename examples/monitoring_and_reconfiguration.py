"""Day-2 operations: monitoring, failures, and model-driven reconfiguration.

The paper's pipeline is not a one-shot: the model stays the source of
truth while the plant runs. This example shows the operational loop:

1. deploy the ICE lab and read ISA-95 KPIs off the historian data,
2. lose a cluster node, self-heal, verify the KPIs recover,
3. detect a machine gone silent (stale-data alarm),
4. change the *model* (a new warehouse sensor) and regenerate
   incrementally — only the touched manifests redeploy.

Run with:  python examples/monitoring_and_reconfiguration.py
"""

import copy
import tempfile

from repro.codegen import IncrementalEngine, PipelineOptions
from repro.icelab import run_icelab
from repro.icelab.model_gen import icelab_sources
from repro.isa95.levels import VariableSpec
from repro.k8s import heal
from repro.machines.specs import ICE_LAB_SPECS
from repro.pipeline import smoke_test
from repro.som import KpiMonitor


def main() -> None:
    print("== deploy and warm up ==")
    result = run_icelab(smoke_steps=4, seed=5)
    monitor = KpiMonitor(result.world.store, result.topology)
    print(monitor.line_kpi().render())

    print("\n== 2. node failure and self-healing ==")
    victim = result.cluster.running_pods()[0].node
    evicted = result.cluster.fail_node(victim)
    print(f"node {victim} failed; {len(evicted)} pods evicted; "
          f"{result.cluster.stats()['pods_running']} still running")
    outcome = heal(result.cluster)
    print(f"healed: {outcome['running']} pods running "
          f"({outcome['restarted_downstream']} downstream restarts)")
    smoke = smoke_test(result, steps=3)
    print(f"factory after healing: "
          f"{'OPERATIONAL' if smoke.all_ok else 'BROKEN'} "
          f"({smoke.variables_flowing}/{smoke.variables_total} variables)")

    print("\n== 3. stale-machine alarm ==")
    checkpoint = result.world.clock
    result.world.clock += 5.0
    for name, simulator in result.world.simulators.items():
        if name != "spea":  # SPEA stops reporting
            simulator.step()
    stale = monitor.stale_machines(newer_than=checkpoint + 0.5)
    print(f"machines silent since t={checkpoint}: {stale}")

    print("\n== 4. model change -> incremental regeneration ==")
    with tempfile.TemporaryDirectory() as cache_dir:
        engine = IncrementalEngine(PipelineOptions(namespace="icelab",
                                                   cache_dir=cache_dir))
        engine.generate(*icelab_sources())
        specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
        warehouse = next(s for s in specs if s.name == "warehouse")
        warehouse.categories["Storage"].append(
            VariableSpec("humidity", "Real", unit="%"))
        regenerated = engine.generate(*icelab_sources(specs))
    update = engine.last_update
    print(f"sources changed: {list(update.changed_sources)}")
    print(f"dirty model anchors: "
          f"{sorted(str(key) for key in update.changed_anchors)}")
    touched = sorted(artifact for artifact, state
                     in regenerated.provenance.items()
                     if state == "regenerated")
    reused = [artifact for artifact, state
              in regenerated.provenance.items()
              if state == "reused" and artifact.startswith("manifest:")]
    print(f"artifacts regenerated: {touched}")
    print(f"manifests reused unchanged: "
          f"{len(reused)}/{len(regenerated.manifests)}")

    result.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
