"""The paper's headline experiment: configure the whole ICE Laboratory.

Generates the full ICE-lab SysML v2 model (10 machines, 6 workcells,
498 variables, 66 services — the inventory of Table I), runs the
two-step configuration pipeline, deploys everything onto the simulated
Kubernetes cluster, and verifies the factory actually works: machine
data flows into the time-series store and every machine service is
invocable through the message broker.

Run with:  python examples/icelab_full_deployment.py
"""

from repro.diagrams import overview_ascii
from repro.icelab import run_icelab
from repro.pipeline import build_table1_report


def main() -> None:
    print("deploying the ICE Laboratory (simulated)...\n")
    result = run_icelab(smoke_steps=5, seed=2025)

    print("== generated configuration (Table I, last row) ==")
    for key, value in result.generation.summary().items():
        print(f"  {key:>20}: {value}")
    print("\n  client grouping:")
    for group in result.generation.groups:
        flag = "  <- oversized, dedicated client" if group.oversized else ""
        print(f"    {group.name}: {', '.join(group.machine_names)} "
              f"({group.points} points){flag}")

    print("\n== cluster state ==")
    for key, value in result.cluster.stats().items():
        print(f"  {key:>15}: {value}")
    by_node = {}
    for pod in result.cluster.running_pods():
        by_node.setdefault(pod.node, []).append(pod.metadata.name)
    for node, pods in sorted(by_node.items()):
        print(f"  {node}: {len(pods)} pods")

    print("\n== functional smoke test ==")
    smoke = result.smoke
    print(f"  variables flowing into the DB: "
          f"{smoke.variables_flowing}/{smoke.variables_total}")
    print(f"  machines with stored data:     "
          f"{smoke.machines_with_data}/{smoke.machines_total}")
    print(f"  services invoked over broker:  {smoke.services_invoked} "
          f"(failed: {smoke.services_failed})")
    print(f"  data points stored:            {smoke.data_points_stored}")
    print(f"  deployment {'SUCCESSFUL' if smoke.all_ok else 'FAILED'}")

    print("\n== Table I (reproduced) ==")
    report = build_table1_report(result.model, result.topology,
                                 result.generation)
    print(report.render())

    print("\n== Figure 1 (regenerated from this run) ==")
    print(overview_ascii(result.generation))

    result.shutdown()


if __name__ == "__main__":
    main()
