"""Quickstart: model a one-machine workcell and generate its configuration.

This walks the whole methodology on a minimal example:

1. write a SysML v2 model (ISA-95 base library + one machine + driver),
2. parse, resolve and validate it,
3. extract the ISA-95 topology,
4. run the two-step configuration generation,
5. print the intermediate JSON and the Kubernetes YAML.

Run with:  python examples/quickstart.py
"""

import json

from repro.codegen import PipelineOptions, generate_configuration
from repro.isa95 import ISA95_LIBRARY_SOURCE, extract_topology
from repro.sysml import load_model, validate_model

FACTORY = ISA95_LIBRARY_SOURCE + """
package DrillLib {
    import ISA95::*;
    part def DrillDriver :> MachineDriver {
        part def DrillParameters :> Driver::DriverParameters {
            attribute ip : String;
            attribute ip_port : Integer;
        }
        part def DrillVariables :> Driver::DriverVariables {
            port def DrillVar { in attribute value : Real; }
        }
        part def DrillMethods :> Driver::DriverMethods {
            port def DrillMthd {
                out action operation { out done : Boolean; }
            }
        }
    }
    part def DrillPress :> Machine {
        part def DrillData :> Machine::MachineData;
        part def DrillServices :> Machine::MachineServices;
    }
}

part plant : ISA95::Topology {
    part acme : ISA95::Topology::Enterprise {
        part factory1 : ISA95::Topology::Enterprise::Site {
            part hallA : ISA95::Topology::Enterprise::Site::Area {
                part line1 : ISA95::Topology::Enterprise::Site::Area::ProductionLine {
                    part drillCell : ISA95::Topology::Enterprise::Site::Area::ProductionLine::Workcell {
                        part drill : DrillLib::DrillPress {
                            ref part drillDriver : DrillLib::DrillDriver
                                = drillDriverInstance;
                            part drillData : DrillData {
                                attribute spindle_rpm : Real;
                                attribute depth : Real;
                                attribute running : Boolean;
                                port rpm_port : ~DrillLib::DrillDriver::DrillVariables::DrillVar;
                                bind rpm_port.value = spindle_rpm;
                            }
                            part drillServices : DrillServices {
                                action start_drilling {
                                    in target_depth : Real;
                                    out ok : Boolean;
                                }
                                action stop_drilling { out ok : Boolean; }
                            }
                        }
                    }
                }
            }
        }
    }
}

part drillDriverInstance : DrillLib::DrillDriver {
    part params : DrillParameters {
        :>> ip = '192.168.0.40';
        :>> ip_port = 4444;
    }
    part vars : DrillVariables {
        attribute spindle_rpm : Real;
        port pp_rpm : DrillVar;
        bind pp_rpm.value = spindle_rpm;
    }
    part methods : DrillMethods {
        port pp_start : DrillMthd;
        port pp_stop : DrillMthd;
    }
}
"""


def main() -> None:
    print("== 1. parse + resolve ==")
    model = load_model(FACTORY)
    print(f"model loaded: {sum(1 for _ in model.all_elements())} elements")

    print("\n== 2. validate ==")
    report = validate_model(model)
    print(report if len(report) else "no findings — model is well-formed")
    report.raise_if_errors()

    print("\n== 3. extract the ISA-95 topology ==")
    topology = extract_topology(model)
    print(f"enterprise={topology.enterprise} site={topology.site} "
          f"area={topology.area}")
    for machine in topology.machines:
        driver = machine.driver
        print(f"machine {machine.name} in {machine.workcell}: "
              f"{len(machine.variables)} variables, "
              f"{len(machine.services)} services, "
              f"driver={driver.protocol} {driver.parameters}")

    print("\n== 4. generate the configuration ==")
    result = generate_configuration(
        model, options=PipelineOptions(namespace="quickstart"))
    print(f"{result.opcua_server_count} OPC UA server(s), "
          f"{result.opcua_client_count} client(s), "
          f"{result.config_size_kb:.1f} KB in "
          f"{result.generation_seconds * 1000:.1f} ms")

    print("\n== 5a. intermediate JSON (machine 'drill') ==")
    print(json.dumps(result.machine_configs["drill"], indent=2)[:1200])

    print("\n== 5b. Kubernetes manifest (workcell server) ==")
    manifest = result.manifests["drillcell-opcua-server.yaml"]
    print(manifest[:1000])
    print("...")


if __name__ == "__main__":
    main()
