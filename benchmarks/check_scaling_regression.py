"""Gate a fresh BENCH_scaling.json against the committed baseline.

CI machines are slower and noisier than the workstation that produced
the committed trajectory, so absolute times are useless as a gate.
What *is* hardware-robust are the shape ratios:

* ``wall_growth`` — how much slower tier ×N is than tier ×1 in the
  same process on the same box;
* ``lexer_speedup`` — the streaming lexer vs the reference scanner,
  again measured side by side.

For every tier present in both files, the candidate's growth factor
may be at most ``1 + TOLERANCE`` times the baseline's, and its lexer
speedup at least ``1 - TOLERANCE`` times the baseline's (±25% by
default). Improvements always pass.

Usage::

    python benchmarks/check_scaling_regression.py \
        --baseline BENCH_scaling.json --candidate /tmp/BENCH_scaling.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TOLERANCE = 0.25


def _tiers_by_scale(report: dict) -> dict[int, dict]:
    return {tier["scale"]: tier for tier in report["tiers"]}


def check(baseline: dict, candidate: dict,
          tolerance: float = TOLERANCE) -> list[str]:
    """Every regression beyond *tolerance*, as human-readable lines."""
    failures: list[str] = []
    base_tiers = _tiers_by_scale(baseline)
    cand_tiers = _tiers_by_scale(candidate)
    shared = sorted(set(base_tiers) & set(cand_tiers))
    if len(shared) < 2:
        return [f"need >= 2 shared tiers to compare shapes, got {shared}"]
    for scale in shared:
        base, cand = base_tiers[scale], cand_tiers[scale]
        speedup_floor = base["lexer_speedup"] * (1 - tolerance)
        if cand["lexer_speedup"] < speedup_floor:
            failures.append(
                f"x{scale}: lexer speedup {cand['lexer_speedup']:.2f}x "
                f"fell below {speedup_floor:.2f}x "
                f"(baseline {base['lexer_speedup']:.2f}x - {tolerance:.0%})")
        if scale == 1:
            continue
        growth_ceiling = base["wall_growth"] * (1 + tolerance)
        if cand["wall_growth"] > growth_ceiling:
            failures.append(
                f"x{scale}: wall growth {cand['wall_growth']:.2f}x "
                f"exceeds {growth_ceiling:.2f}x "
                f"(baseline {base['wall_growth']:.2f}x + {tolerance:.0%})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_scaling.json"))
    parser.add_argument("--candidate", type=Path, required=True)
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    failures = check(baseline, candidate, args.tolerance)
    shared = sorted(set(_tiers_by_scale(baseline))
                    & set(_tiers_by_scale(candidate)))
    if failures:
        print("scaling regression gate FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"scaling regression gate passed on tiers {shared} "
          f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
