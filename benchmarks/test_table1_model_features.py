"""T1-model: Table I, per-machine model-feature rows.

Regenerates the left half of Table I (Part Def./Inst., Attribute Inst.,
Port Inst., Machine Variables, Machine Services) by measuring the loaded
ICE-lab model, and benchmarks the measurement itself (instance
elaboration over the whole factory).

Expected reproduction quality (documented in EXPERIMENTS.md):

* Machine Variables / Machine Services — exact (they define the model).
* Port instances — exact for 7/10 rows (ports = 2x(vars+services) under
  the methodology); the paper's remaining rows (Fiam 24, RB-Kairos 14)
  modeled a few variables without a dedicated driver port.
* Attribute instances — same magnitude and ordering (ratio per data
  point 2-8); absolute values differ with the number of metadata
  attributes per port (the paper does not list theirs).
* Part Def./Inst. — same ordering (conveyor largest); granularity of
  category grouping differs.
"""

import pytest

from conftest import print_comparison
from repro.pipeline import build_table1_report

#: Table I of the paper: machine -> (part defs, part insts, attr insts,
#: port insts, variables, services)
PAPER_TABLE1 = {
    "spea": (9, 8, 48, 16, 3, 5),
    "emco": (12, 17, 238, 106, 34, 19),
    "ur5": (23, 17, 611, 206, 99, 4),
    "siemensPlc": (31, 82, 194, 68, 26, 8),
    "fiam": (11, 28, 82, 24, 12, 3),
    "qcPc": (10, 9, 85, 30, 13, 2),
    "warehouse": (10, 9, 44, 16, 5, 3),
    "conveyor": (144, 143, 1220, 612, 296, 10),
    "kairos1": (11, 18, 48, 14, 5, 6),
    "kairos2": (11, 18, 48, 14, 5, 6),
}

#: Rows whose port-instance count the methodology reproduces exactly.
EXACT_PORT_ROWS = ("spea", "emco", "ur5", "siemensPlc", "qcPc",
                   "warehouse", "conveyor")


@pytest.fixture(scope="module")
def report(model, topology, generation):
    return build_table1_report(model, topology, generation)


def test_table1_model_features(benchmark, model, topology, generation,
                               report):
    measured = benchmark(build_table1_report, model, topology, generation)
    rows = []
    for machine, paper in PAPER_TABLE1.items():
        row = measured.row(machine)
        rows.append((f"{machine}.variables", paper[4],
                     row.machine_variables, "exact"))
        rows.append((f"{machine}.services", paper[5],
                     row.machine_services, "exact"))
        rows.append((f"{machine}.ports", paper[3], row.port_instances))
        rows.append((f"{machine}.attributes", paper[2],
                     row.attribute_instances))
    print_comparison("Table I — model features", rows)

    for machine, paper in PAPER_TABLE1.items():
        row = measured.row(machine)
        # variables/services are exact by construction
        assert row.machine_variables == paper[4], machine
        assert row.machine_services == paper[5], machine
    for machine in EXACT_PORT_ROWS:
        assert measured.row(machine).port_instances == \
            PAPER_TABLE1[machine][3], machine


def test_port_instances_follow_2x_rule(report):
    for row in report.rows:
        points = row.machine_variables + row.machine_services
        assert row.port_instances == 2 * points, row.machine


def test_attribute_ordering_matches_paper(report):
    """Machines ranked by attribute instances: the paper's ranking holds
    (rank correlation; near-ties like qcPc 85 vs fiam 82 may swap)."""
    from scipy.stats import spearmanr
    machines = list(PAPER_TABLE1)
    paper = [PAPER_TABLE1[m][2] for m in machines]
    measured = [report.row(m).attribute_instances for m in machines]
    rho, _ = spearmanr(paper, measured)
    assert rho > 0.9, (rho, list(zip(machines, paper, measured)))
    # and the top-4 heavyweights are the same set, in the same order
    top4 = sorted(machines, key=lambda m: PAPER_TABLE1[m][2],
                  reverse=True)[:4]
    measured_top4 = sorted(
        machines, key=lambda m: report.row(m).attribute_instances,
        reverse=True)[:4]
    assert measured_top4 == top4


def test_conveyor_dominates_as_in_paper(report):
    conveyor = report.row("conveyor")
    assert conveyor.part_definitions == max(r.part_definitions
                                            for r in report.rows)
    assert conveyor.part_instances == max(r.part_instances
                                          for r in report.rows)
    assert conveyor.attribute_instances == max(r.attribute_instances
                                               for r in report.rows)


def test_attribute_ratio_within_paper_band(report):
    # paper band: 3.4 (kairos) .. 6.2 (spea) attributes per data point;
    # allow 2-8 for modeling-detail differences
    for row in report.rows:
        ratio = row.attribute_instances / (row.machine_variables
                                           + row.machine_services)
        assert 2.0 <= ratio <= 8.0, (row.machine, ratio)
