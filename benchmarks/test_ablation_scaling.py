"""A2/A4 (ablation, ours): how the pipeline scales with factory size.

The ICE lab has 564 data points; a production plant can be far larger.
Two ablations live here:

* **A2** replicates conveyor-class machines to grow the model and
  measures front-end (parse+resolve) and generation cost, asserting
  near-linear scaling — the property that makes the approach viable
  beyond the case study.
* **A4** sweeps the mega-factory corpus
  (:func:`repro.testkit.mega_factory_sources`) across ×1/×10/×100
  tiers and publishes the trajectory to ``BENCH_scaling.json``:
  streaming-lexer tokens/sec vs the reference scanner, resolve
  throughput, end-to-end wall, peak RSS and the per-phase breakdown
  from :mod:`repro.obs`. CI runs the ×10 smoke by default
  (``REPRO_SCALING_TIERS=1,10``); the committed JSON carries the full
  ×100 trajectory measured locally.
"""

import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import print_comparison
from repro.codegen import generate_configuration
from repro.icelab.model_gen import icelab_sources
from repro.machines.catalog import DriverSpec, MachineSpec
from repro.machines.specs import ICE_LAB_SPECS
from repro.isa95.levels import VariableSpec
from repro.machines.catalog import simple_service
from repro.obs import Tracer
from repro.sysml import load_model
from repro.sysml.lexer import iter_tokens
from repro.sysml.lexer_reference import tokenize_reference
from repro.testkit import mega_factory_specs, mega_factory_sources


def replicated_specs(extra_cells: int) -> list[MachineSpec]:
    """The ICE lab plus N extra PLC-class workcells (30 points each)."""
    specs = list(ICE_LAB_SPECS)
    for index in range(extra_cells):
        specs.append(MachineSpec(
            name=f"cellPlc{index}",
            display_name=f"Extra cell PLC {index}",
            type_name=f"ExtraPLC{index}",
            workcell=f"extraCell{index:02d}",
            driver=DriverSpec(
                protocol="OPCUADriver", is_generic=True,
                parameters={"endpoint":
                            f"opc.tcp://10.200.{index}.1:4840"}),
            categories={"IO": [VariableSpec(f"x{i}", "Real")
                               for i in range(25)]},
            services=[simple_service(f"op{i}") for i in range(5)],
        ))
    return specs


@pytest.mark.parametrize("extra_cells", [0, 10, 20])
def test_pipeline_scales(extra_cells, benchmark):
    specs = replicated_specs(extra_cells)
    sources = icelab_sources(specs)

    def flow():
        model = load_model(*sources)
        return generate_configuration(model)

    result = benchmark.pedantic(flow, rounds=2, iterations=1)
    assert result.opcua_server_count == 6 + extra_cells


def test_scaling_is_near_linear():
    """Doubling the model should not much more than double the time."""
    timings = {}
    for extra_cells in (0, 16):
        specs = replicated_specs(extra_cells)
        sources = icelab_sources(specs)
        started = time.perf_counter()
        model = load_model(*sources)
        generate_configuration(model)
        timings[extra_cells] = time.perf_counter() - started
    points_small = 564
    points_large = 564 + 16 * 30
    growth = timings[16] / timings[0]
    size_growth = points_large / points_small
    rows = [
        ("factory points", points_small, points_large),
        ("wall time growth", f"~{size_growth:.2f}x ideal",
         f"{growth:.2f}x"),
    ]
    print_comparison("A2 — scaling", rows)
    # super-linear blowup (quadratic would be ~3.4x here) must not occur
    assert growth < size_growth * 2.5


# -- A4: the mega-factory scaling wall ---------------------------------------

#: Tiers to sweep; CI keeps the ×10 smoke, the committed
#: BENCH_scaling.json is produced with REPRO_SCALING_TIERS=1,10,100.
SCALING_TIERS = tuple(
    int(tier) for tier in
    os.environ.get("REPRO_SCALING_TIERS", "1,10").split(","))
ROUNDS = 3
#: ×N end-to-end wall must stay within N × this slack of the ×1 wall
#: (the issue's acceptance bar: ×100 <= 150 × the ×1 wall).
LINEARITY_SLACK = 1.5
#: Streaming lexer vs the reference scanner, min-of-3 on the top tier.
LEXER_SPEEDUP_TARGET = 2.0


def _min_of(fn, rounds=ROUNDS):
    """(best wall seconds, last result) over *rounds* runs of *fn*."""
    times, result = [], None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - started)
    return min(times), result


def _measure_tier(scale: int) -> dict:
    specs = mega_factory_specs(scale)
    sources = mega_factory_sources(scale)
    source_bytes = sum(len(source) for source in sources)

    def drain_streaming():
        count = 0
        for source in sources:
            for _ in iter_tokens(source):
                count += 1
        return count

    def drain_reference():
        return sum(len(tokenize_reference(source)) for source in sources)

    lex_seconds, token_count = _min_of(drain_streaming)
    ref_seconds, ref_count = _min_of(drain_reference)
    assert ref_count == token_count  # differential suite guards the rest

    def flow():
        tracer = Tracer()
        with tracer.activate():
            model = load_model(*sources)
            result = generate_configuration(model)
        return tracer.trace(), model, result

    wall_seconds, (trace, model, result) = _min_of(flow)
    # every block contributes one fresh workcell => one OPC UA server
    assert result.opcua_server_count == 6 + (scale - 1)
    phases = {name: round(seconds, 6)
              for name, seconds in trace.phase_seconds().items()}
    element_count = sum(1 for _ in model.descendants())
    resolve_seconds = phases.get("resolve", 0.0)
    return {
        "scale": scale,
        "machines": len(specs),
        "points": sum(spec.point_count for spec in specs),
        "source_bytes": source_bytes,
        "tokens": token_count,
        "elements": element_count,
        "lexer_seconds": round(lex_seconds, 6),
        "reference_lexer_seconds": round(ref_seconds, 6),
        "tokens_per_second": round(token_count / lex_seconds),
        "reference_tokens_per_second": round(token_count / ref_seconds),
        "lexer_speedup": round(ref_seconds / lex_seconds, 2),
        "resolve_seconds": resolve_seconds,
        "elements_resolved_per_second": (
            round(element_count / resolve_seconds) if resolve_seconds else None),
        "end_to_end_seconds": round(wall_seconds, 6),
        "phases": phases,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _measure_tier_isolated(scale: int) -> dict:
    """Run :func:`_measure_tier` in a fresh interpreter.

    Each tier gets its own process so a big tier cannot contaminate the
    next one's timings (heap fragmentation, GC pressure from hundreds
    of thousands of retired elements) and ``peak_rss_kb`` is the true
    per-tier footprint rather than a monotone process-wide maximum.
    """
    script = Path(__file__).resolve()
    env = dict(os.environ)
    src = str(script.parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, str(script), str(scale)],
                          capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        pytest.fail(f"tier x{scale} subprocess failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def test_mega_factory_scaling_trajectory():
    """Sweep the tiers, publish BENCH_scaling.json, gate the trajectory."""
    tiers = [_measure_tier_isolated(scale)
             for scale in sorted(set(SCALING_TIERS))]
    base = tiers[0]
    assert base["scale"] == 1, "the ×1 tier anchors the growth factors"
    for tier in tiers[1:]:
        tier["wall_growth"] = round(
            tier["end_to_end_seconds"] / base["end_to_end_seconds"], 2)
    top = tiers[-1]

    Path("BENCH_scaling.json").write_text(json.dumps({
        "benchmark": "mega-factory-scaling",
        "corpus": "repro.testkit.mega_factory_sources",
        "rounds": ROUNDS,
        "linearity_slack": LINEARITY_SLACK,
        "lexer_speedup_target": LEXER_SPEEDUP_TARGET,
        "tiers": tiers,
    }, indent=2) + "\n")

    rows = [(f"x{t['scale']} ({t['points']} pts)",
             f"<= {LINEARITY_SLACK * t['scale']:.0f}x" if t is not base
             else "baseline",
             f"{t['end_to_end_seconds'] * 1e3:.0f} ms",
             f"{t.get('wall_growth', 1.0):.1f}x, "
             f"lexer {t['lexer_speedup']:.1f}x vs reference")
            for t in tiers]
    print_comparison("A4 — mega-factory scaling wall", rows)

    # near-linear end to end: ×N wall within N × slack of the ×1 wall
    for tier in tiers[1:]:
        budget = LINEARITY_SLACK * tier["scale"] * base["end_to_end_seconds"]
        assert tier["end_to_end_seconds"] <= budget, (
            f"x{tier['scale']} wall {tier['end_to_end_seconds']:.2f}s "
            f"blows the near-linear budget {budget:.2f}s")
    # the streaming lexer must beat the reference scanner on the top tier
    assert top["lexer_speedup"] >= LEXER_SPEEDUP_TARGET


def test_generation_dominated_by_model_size(topology):
    """More machines -> proportionally more config bytes."""
    from repro.icelab.model_gen import load_icelab_model
    small = generate_configuration(
        load_icelab_model(replicated_specs(0)))
    large = generate_configuration(
        load_icelab_model(replicated_specs(8)))
    assert large.config_size_bytes > small.config_size_bytes
    per_point_small = small.config_size_bytes / 564
    per_point_large = large.config_size_bytes / (564 + 8 * 30)
    # cost per data point stays flat (within 2x)
    assert 0.5 <= per_point_large / per_point_small <= 2.0


if __name__ == "__main__":
    # tier-measurement entry point for _measure_tier_isolated
    json.dump(_measure_tier(int(sys.argv[1])), sys.stdout)
