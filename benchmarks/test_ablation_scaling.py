"""A2 (ablation, ours): how the pipeline scales with factory size.

The ICE lab has 564 data points; a production plant can be far larger.
This ablation replicates conveyor-class machines to grow the model and
measures front-end (parse+resolve) and generation cost, asserting
near-linear scaling — the property that makes the approach viable
beyond the case study.
"""

import time

import pytest

from conftest import print_comparison
from repro.codegen import generate_configuration
from repro.icelab.model_gen import icelab_sources
from repro.machines.catalog import DriverSpec, MachineSpec
from repro.machines.specs import ICE_LAB_SPECS
from repro.isa95.levels import VariableSpec
from repro.machines.catalog import simple_service
from repro.sysml import load_model


def replicated_specs(extra_cells: int) -> list[MachineSpec]:
    """The ICE lab plus N extra PLC-class workcells (30 points each)."""
    specs = list(ICE_LAB_SPECS)
    for index in range(extra_cells):
        specs.append(MachineSpec(
            name=f"cellPlc{index}",
            display_name=f"Extra cell PLC {index}",
            type_name=f"ExtraPLC{index}",
            workcell=f"extraCell{index:02d}",
            driver=DriverSpec(
                protocol="OPCUADriver", is_generic=True,
                parameters={"endpoint":
                            f"opc.tcp://10.200.{index}.1:4840"}),
            categories={"IO": [VariableSpec(f"x{i}", "Real")
                               for i in range(25)]},
            services=[simple_service(f"op{i}") for i in range(5)],
        ))
    return specs


@pytest.mark.parametrize("extra_cells", [0, 10, 20])
def test_pipeline_scales(extra_cells, benchmark):
    specs = replicated_specs(extra_cells)
    sources = icelab_sources(specs)

    def flow():
        model = load_model(*sources)
        return generate_configuration(model)

    result = benchmark.pedantic(flow, rounds=2, iterations=1)
    assert result.opcua_server_count == 6 + extra_cells


def test_scaling_is_near_linear():
    """Doubling the model should not much more than double the time."""
    timings = {}
    for extra_cells in (0, 16):
        specs = replicated_specs(extra_cells)
        sources = icelab_sources(specs)
        started = time.perf_counter()
        model = load_model(*sources)
        generate_configuration(model)
        timings[extra_cells] = time.perf_counter() - started
    points_small = 564
    points_large = 564 + 16 * 30
    growth = timings[16] / timings[0]
    size_growth = points_large / points_small
    rows = [
        ("factory points", points_small, points_large),
        ("wall time growth", f"~{size_growth:.2f}x ideal",
         f"{growth:.2f}x"),
    ]
    print_comparison("A2 — scaling", rows)
    # super-linear blowup (quadratic would be ~3.4x here) must not occur
    assert growth < size_growth * 2.5


def test_generation_dominated_by_model_size(topology):
    """More machines -> proportionally more config bytes."""
    from repro.icelab.model_gen import load_icelab_model
    small = generate_configuration(
        load_icelab_model(replicated_specs(0)))
    large = generate_configuration(
        load_icelab_model(replicated_specs(8)))
    assert large.config_size_bytes > small.config_size_bytes
    per_point_small = small.config_size_bytes / 564
    per_point_large = large.config_size_bytes / (564 + 8 * 30)
    # cost per data point stays flat (within 2x)
    assert 0.5 <= per_point_large / per_point_small <= 2.0
