"""F2: Figure 2 — machine <-> driver communication-channel structure.

The paper's Figure 2 shows the EMCO milling machine: MachineData and
MachineServices with ports on the machine side, DriverVariables and
DriverMethods with ports on the driver side, and two interfaces joining
them. We measure exactly that structure on the loaded model and assert
its invariants (mirrored port counts, everything connected, bindings on
both sides).
"""

import pytest

from conftest import print_comparison
from repro.diagrams import (connections_ascii, connections_dot,
                            measure_connections)


@pytest.fixture(scope="module")
def emco_figure(model):
    return measure_connections(model, "emco", "emcoDriverInstance")


def test_figure2_emco(benchmark, model, emco_figure):
    figure = benchmark(measure_connections, model, "emco",
                       "emcoDriverInstance")
    print_comparison("Figure 2 — EMCO machine/driver channel", [
        ("machine data ports", 34, figure.machine_data_ports,
         "= machine variables"),
        ("machine service ports", 19, figure.machine_service_ports,
         "= machine services"),
        ("driver variable ports", 34, figure.driver_variable_ports),
        ("driver method ports", 19, figure.driver_method_ports),
        ("total ports", 106, figure.total_ports,
         "Table I EMCO 'Ports Inst.' cell"),
        ("interfaces (data/services)", "2 kinds",
         f"{figure.data_connectors}+{figure.service_connectors} conn"),
    ])
    assert figure.total_ports == 106
    assert figure.balanced
    print("\n" + connections_ascii(figure))


def test_figure2_every_point_connected(emco_figure):
    # one connection per variable and per service
    assert emco_figure.data_connectors == 34
    assert emco_figure.service_connectors == 19


def test_figure2_bindings_on_both_sides(emco_figure):
    # each of the 34 variables is bound to its port on the machine AND
    # on the driver side
    assert emco_figure.bindings == 2 * 34


def test_figure2_holds_for_all_machines(model, topology):
    """The channel structure is uniform across the whole lab."""
    rows = []
    for machine in topology.machines:
        figure = measure_connections(model, machine.name,
                                     f"{machine.name}DriverInstance")
        rows.append((machine.name, "balanced",
                     "balanced" if figure.balanced else "BROKEN",
                     f"{figure.total_ports} ports"))
        assert figure.balanced, machine.name
        assert figure.machine_data_ports == len(machine.variables)
        assert figure.machine_service_ports == len(machine.services)
    print_comparison("Figure 2 — all machines", rows)


def test_figure2_dot_renders(emco_figure):
    dot = connections_dot(emco_figure)
    assert "digraph connections" in dot
    assert "DriverVariables" in dot
