"""A3 (ablation, ours): incremental vs full regeneration.

When the model changes, how much of the deployed configuration must
actually move? The paper's pipeline regenerates everything; our
incremental extension diffs the model and reuses untouched manifests,
which is what keeps a live plant from restarting every pod on every
model edit. This ablation measures the reuse fraction for typical edit
classes.
"""

import copy

import pytest

from conftest import print_comparison, record_phases
from repro.codegen import (GenerationPipeline, PipelineOptions,
                           generate_configuration, regenerate)
from repro.obs import Tracer
from repro.icelab.model_gen import icelab_sources, load_icelab_model
from repro.isa95.levels import VariableSpec
from repro.machines.specs import ICE_LAB_SPECS
from repro.sysml import load_model


@pytest.fixture(scope="module")
def baseline():
    model = load_icelab_model()
    return model, generate_configuration(
        model, options=PipelineOptions(namespace="icelab"))


def _edit(name, mutate):
    specs = [copy.deepcopy(s) for s in ICE_LAB_SPECS]
    mutate({s.name: s for s in specs})
    return name, specs


EDITS = [
    _edit("driver-ip-change",
          lambda by: by["emco"].driver.parameters.update(
              {"ip": "10.197.12.99"})),
    _edit("add-variable",
          lambda by: by["warehouse"].categories["Storage"].append(
              VariableSpec("humidity", "Real"))),
    _edit("add-variable-to-conveyor",
          lambda by: by["conveyor"].categories["Line"].append(
              VariableSpec("vibration", "Real"))),
]


def test_incremental_reuse_fraction(baseline):
    old_model, previous = baseline
    pipeline = GenerationPipeline(PipelineOptions(namespace="icelab"))
    rows = []
    for name, specs in EDITS:
        new_model = load_model(*icelab_sources(specs))
        incremental = regenerate(previous, old_model, new_model, pipeline)
        total = (len(incremental.regenerated_manifests)
                 + len(incremental.reused_manifests))
        reuse = len(incremental.reused_manifests) / total
        rows.append((name, "full regen = 0%", f"{reuse:.0%} reused",
                     f"{incremental.regenerated_manifests}"))
        assert total == 14
        # single-machine edits must keep a clear majority untouched
        assert reuse >= 0.5, name
    print_comparison("A3 — manifest reuse per edit class", rows)


def test_noop_edit_reuses_everything(baseline):
    old_model, previous = baseline
    pipeline = GenerationPipeline(PipelineOptions(namespace="icelab"))
    new_model = load_icelab_model()
    incremental = regenerate(previous, old_model, new_model, pipeline)
    assert incremental.fully_reused


def test_incremental_vs_full_benchmark(benchmark, baseline):
    """Wall-time of diff+regenerate (it still re-runs generation; the
    win is redeploy avoidance, not CPU — this documents that honestly)."""
    old_model, previous = baseline
    pipeline = GenerationPipeline(PipelineOptions(namespace="icelab"))
    _, specs = EDITS[0]
    new_model = load_model(*icelab_sources(specs))

    incremental = benchmark(regenerate, previous, old_model, new_model,
                            pipeline)
    assert incremental.changed_machines == ["emco"]
    # one traced run attributes the incremental wall time to phases
    tracer = Tracer()
    with tracer.activate():
        regenerate(previous, old_model, new_model, pipeline)
    record_phases(benchmark, tracer.trace())
