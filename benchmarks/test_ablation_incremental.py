"""A3 (ablation, ours): incremental engine vs cold regeneration.

When one machine's driver parameter moves, how long until the new
configuration is ready? The paper's pipeline re-parses and regenerates
everything; the :class:`IncrementalEngine` chases the edit through the
dependency graph and re-elaborates only the dirty subtree. This
ablation times the canonical one-machine edit against a cold run —
min-of-N on both sides — asserts the >=10x target, and emits
``BENCH_incremental.json`` so perf PRs can diff the numbers.

Every timed run also re-checks byte-identity against the cold result:
the speedup is only worth reporting if the bytes never differ.
"""

import json
import time
from pathlib import Path

import pytest

from conftest import print_comparison
from repro.codegen import (GenerationPipeline, IncrementalEngine,
                           PipelineOptions)
from repro.icelab.model_gen import icelab_sources
from repro.sysml import load_model

OPTIONS = PipelineOptions(namespace="icelab")
EMCO_IP = "10.197.12.11"

#: Everything an EMCO driver edit may legitimately touch: the machine
#: config, its workcell's server, and that server's manifest.
EMCO_ARTIFACTS = {
    "machine:emco",
    "server:workCell02",
    "manifest:workcell02-opcua-server.yaml",
}
ROUNDS = 3
SPEEDUP_TARGET = 10.0


def edited_sources(ip):
    return [s.replace(EMCO_IP, ip) if EMCO_IP in s else s
            for s in icelab_sources()]


def cold_run(sources):
    return GenerationPipeline(OPTIONS).run_on_model(load_model(*sources))


@pytest.fixture()
def engine():
    engine = IncrementalEngine(OPTIONS)
    engine.generate(*icelab_sources())
    return engine


def test_one_machine_edit_speedup_vs_cold(engine):
    # Each round moves the IP to a DISTINCT value: resubmitting
    # identical text takes the clean path (pure reuse) and would
    # measure nothing.
    cold_times, warm_times = [], []
    regenerated = set()
    for i in range(ROUNDS):
        sources = edited_sources(f"10.197.12.{50 + i}")
        start = time.perf_counter()
        result = engine.generate(*sources)
        warm_times.append(time.perf_counter() - start)
        regenerated = {artifact for artifact, state
                       in result.provenance.items()
                       if state == "regenerated"}
        assert regenerated <= EMCO_ARTIFACTS
        assert "machine:emco" in regenerated
        start = time.perf_counter()
        cold = cold_run(sources)
        cold_times.append(time.perf_counter() - start)
        assert result.manifests == cold.manifests
        assert result.machine_configs == cold.machine_configs
    cold_s, warm_s = min(cold_times), min(warm_times)
    speedup = cold_s / warm_s
    Path("BENCH_incremental.json").write_text(json.dumps({
        "benchmark": "incremental-one-machine-edit",
        "edit": "emco driver ip",
        "rounds": ROUNDS,
        "cold_seconds": round(cold_s, 6),
        "incremental_seconds": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "regenerated": sorted(regenerated),
        "artifacts_reused": 38 - len(regenerated),
        "speedup_target": SPEEDUP_TARGET,
    }, indent=2) + "\n")
    print_comparison("A3 — one-machine edit: incremental vs cold", [
        ("cold pipeline", "baseline", f"{cold_s * 1e3:.1f} ms"),
        ("incremental engine", f">= {SPEEDUP_TARGET:.0f}x",
         f"{warm_s * 1e3:.1f} ms", f"{speedup:.1f}x faster"),
    ])
    assert speedup >= SPEEDUP_TARGET


def test_noop_resubmission_reuses_everything(engine):
    result = engine.generate(*icelab_sources())
    assert engine.last_update.clean
    assert set(result.provenance.values()) == {"reused"}


def test_reuse_fraction_per_edit_class(engine):
    rows = []
    # comment-only: semantically clean, everything reused
    commented = list(icelab_sources())
    commented[0] += "\n// ablation touch\n"
    result = engine.generate(*commented)
    states = list(result.provenance.values())
    rows.append(("comment-only", "100%",
                 f"{states.count('reused') / len(states):.0%} reused", ""))
    assert states.count("reused") == len(states)
    # driver-ip: partial path, only the EMCO workcell moves
    result = engine.generate(*edited_sources("10.197.12.99"))
    states = list(result.provenance.values())
    reuse = states.count("reused") / len(states)
    moved = sorted(artifact for artifact, state
                   in result.provenance.items() if state == "regenerated")
    rows.append(("driver-ip-change", "full regen = 0%",
                 f"{reuse:.0%} reused", str(moved)))
    assert reuse >= 0.9
    print_comparison("A3 — manifest reuse per edit class", rows)
