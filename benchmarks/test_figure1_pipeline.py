"""F1: Figure 1 — the methodology overview, regenerated from a live run.

The figure itself is a schematic; its claim is that the flow
model -> toolchain -> configured factory works on the full lab. We
benchmark the complete flow (generation + simulated deployment +
functional smoke test) and assert the properties the figure promises:
every piece of equipment ends up configured and operational.
"""

import pytest

from conftest import print_comparison
from repro.diagrams import overview_ascii, overview_dot
from repro.icelab import run_icelab


@pytest.fixture(scope="module")
def deployed():
    result = run_icelab(smoke_steps=5, seed=7)
    yield result
    result.shutdown()


def test_figure1_end_to_end(benchmark):
    def flow():
        result = run_icelab(smoke_steps=3, seed=1)
        smoke = result.smoke
        result.shutdown()
        return smoke

    smoke = benchmark.pedantic(flow, rounds=3, iterations=1)
    print_comparison("Figure 1 — configured factory", [
        ("machines configured", 10, smoke.machines_with_data, "exact"),
        ("software components", "all", f"{smoke.pods_running} pods",
         "6 servers + 4 clients + 4 historians"),
        ("deployment successful", "yes",
         "yes" if smoke.all_ok else "NO", "paper Sec. IV-A"),
    ])
    assert smoke.all_ok


def test_every_functionality_enabled(deployed):
    """Paper: 'the automatically generated configuration enables all the
    functionalities of the production line'."""
    smoke = deployed.smoke
    assert smoke.variables_flowing == smoke.variables_total == 498
    assert smoke.services_invoked == 10
    assert smoke.services_failed == 0


def test_figure1_renderings(deployed):
    dot = overview_dot(deployed.generation)
    ascii_art = overview_ascii(deployed.generation)
    assert "digraph methodology" in dot
    assert "workCell06" in dot
    assert "SysML v2 model" in ascii_art
    print("\n" + ascii_art)
