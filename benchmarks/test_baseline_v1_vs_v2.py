"""B1: SysML v1 methodology ([5]) vs the paper's SysML v2 methodology.

The paper's qualitative claim is that v2 adds the rigor v1 lacked while
still supporting the same automation. This benchmark quantifies both
halves on the ICE-lab inventory:

* both flows generate configurations (automation parity), and
* a battery of seeded modeling faults is caught 100%-0% in favor of v2
  (rigor), with v1 silently emitting broken configurations.
"""

import pytest

from conftest import print_comparison
from repro.baseline import (FAULT_SCENARIOS, build_v1_model,
                            compare_methodologies,
                            generate_v1_configuration)
from repro.machines.specs import ICE_LAB_SPECS


@pytest.fixture(scope="module")
def comparison():
    return compare_methodologies(list(ICE_LAB_SPECS))


def test_v1_flow_benchmark(benchmark):
    v1_model = build_v1_model(list(ICE_LAB_SPECS))
    result = benchmark(generate_v1_configuration, v1_model)
    assert result.opcua_server_count == 6
    assert len(result.machine_configs) == 10


def test_fault_catching(benchmark, comparison):
    from repro.baseline import run_fault_scenario

    def run_all():
        return [run_fault_scenario(s) for s in FAULT_SCENARIOS]

    outcomes = benchmark.pedantic(run_all, rounds=2, iterations=1)
    rows = [(o.scenario,
             "v2 catches (Sec. I)",
             f"v2={'caught' if o.caught_by_v2 else 'MISSED'} "
             f"v1={'caught' if o.caught_by_v1 else 'missed'}")
            for o in outcomes]
    print_comparison("B1 — modeling-fault detection", rows)
    assert all(o.caught_by_v2 for o in outcomes)
    assert not any(o.caught_by_v1 for o in outcomes)


def test_catch_rates(comparison):
    assert comparison.v2_catch_rate == 1.0
    assert comparison.v1_catch_rate == 0.0


def test_model_economy(comparison):
    """v2 reuses definitions (the RB-Kairos pair shares one library);
    v1 restates everything per machine. v2 carries more elements in
    total because it *models more* (ports, binds, connections with
    checkable semantics) — both facts are reported."""
    rows = [
        ("v1 elements", "-", comparison.v1_elements,
         "blocks/props/ports/ops"),
        ("v2 elements", "-", comparison.v2_elements,
         "incl. ports+binds+connects"),
        ("v2 definitions", "-", comparison.v2_definitions),
        ("v2 reused machine types", 1, comparison.v2_reused_definitions,
         "RB-Kairos pair"),
    ]
    print_comparison("B1 — model economy", rows)
    assert comparison.v2_reused_definitions == 1
    assert comparison.v1_elements > 0
    assert comparison.v2_elements > 0


def test_both_flows_generate_equivalent_inventories(generation):
    v1 = generate_v1_configuration(build_v1_model(list(ICE_LAB_SPECS)))
    for name, v2_config in generation.machine_configs.items():
        v1_config = v1.machine_configs[name]
        assert len(v1_config["variables"]) == len(v2_config["variables"])
        assert len(v1_config["methods"]) == len(v2_config["methods"])
