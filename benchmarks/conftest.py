"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table/figure of the paper and prints a
paper-vs-measured comparison (visible with ``pytest benchmarks/ -s`` or
in the captured output block on failure).
"""

import pytest

from repro.codegen import PipelineOptions, generate_configuration
from repro.icelab import icelab_model
from repro.isa95 import extract_topology
from repro.obs import Tracer


@pytest.fixture(scope="session")
def model():
    """The full ICE-lab SysML v2 model (parsed once per session)."""
    return icelab_model()


@pytest.fixture(scope="session")
def topology(model):
    return extract_topology(model)


@pytest.fixture(scope="session")
def generation(model):
    """A traced generation run; ``generation.trace`` carries phase data."""
    options = PipelineOptions(namespace="icelab", tracer=Tracer())
    return generate_configuration(model, options=options)


def record_phases(benchmark, trace) -> None:
    """Attach per-phase wall times to the bench JSON (``extra_info``).

    ``pytest-benchmark --benchmark-json=out.json`` then carries a
    ``phases`` mapping per benchmark, so a perf PR can attribute its
    win to parse/resolve/topology/validate/step1/step2 instead of the
    end-to-end number alone.
    """
    if trace is None:
        return
    benchmark.extra_info["phases"] = {
        name: round(seconds, 6)
        for name, seconds in trace.phase_seconds().items()}
    benchmark.extra_info["span_count"] = trace.span_count


def print_comparison(title: str, rows: list[tuple]) -> None:
    """Render a (quantity, paper, measured[, note]) comparison table."""
    width = max(len(str(r[0])) for r in rows) + 2
    print(f"\n=== {title} ===")
    print(f"{'quantity':<{width}} {'paper':>12} {'measured':>12}  note")
    for row in rows:
        quantity, paper, measured = row[0], row[1], row[2]
        note = row[3] if len(row) > 3 else ""
        print(f"{quantity:<{width}} {paper!s:>12} {measured!s:>12}  {note}")
