"""A1 (ablation, ours): OPC UA client-capacity sweep.

The paper fixes one client capacity and reports 4 clients. This
ablation sweeps the capacity and characterizes the tradeoff the
grouping optimization navigates: fewer clients (less cluster overhead)
vs. bounded per-client load. It also validates FFD against the
information-theoretic lower bound across the sweep.
"""

import pytest

from conftest import print_comparison
from repro.codegen import (group_machines, grouping_stats,
                           lower_bound_clients)

CAPACITIES = (40, 80, 120, 160, 240, 320, 480, 640)


def test_capacity_sweep(benchmark, topology):
    machines = topology.machines

    def sweep():
        return {capacity: group_machines(machines, capacity)
                for capacity in CAPACITIES}

    results = benchmark(sweep)
    rows = []
    for capacity, groups in results.items():
        stats = grouping_stats(groups)
        note = "paper's operating point" if capacity == 120 else ""
        rows.append((f"capacity={capacity}",
                     "4 @120" if capacity == 120 else "-",
                     f"{stats['clients']} clients "
                     f"(util {stats['mean_utilization']:.0%})", note))
    print_comparison("A1 — client count vs capacity", rows)

    counts = [len(results[c]) for c in CAPACITIES]
    assert counts == sorted(counts, reverse=True)  # monotone
    assert len(results[120]) == 4  # the published point


def test_ffd_close_to_lower_bound(topology):
    machines = topology.machines
    for capacity in CAPACITIES:
        ffd = len(group_machines(machines, capacity))
        bound = lower_bound_clients(machines, capacity)
        assert bound <= ffd <= bound + 2, capacity


def test_oversized_machines_isolated(topology):
    machines = topology.machines
    for capacity in CAPACITIES:
        for group in group_machines(machines, capacity):
            if group.oversized:
                assert len(group.machines) == 1
                assert group.machines[0].point_count > capacity


def test_capacity_one_point_per_client_extremes(topology):
    machines = topology.machines
    assert len(group_machines(machines, 10 ** 6)) == 1
    per_machine = group_machines(machines, 1)
    assert len(per_machine) == len(machines)
