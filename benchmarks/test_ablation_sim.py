"""A5 (ablation, ours): scenario-engine throughput on the mega-factory.

How fast can the discrete-event engine chew through a plant ten times
the ICE lab? The engine's promise is *prediction before deployment*,
which only matters if a what-if suite over a large factory returns in
interactive time. This ablation simulates a dense order book on the
x10 mega-factory (min-of-N), reports events/second, and emits
``BENCH_sim.json`` so perf PRs can diff the trajectory.

Every timed run is also digest-checked against the first: a throughput
number for a nondeterministic engine would be meaningless.
"""

import json
import time
from pathlib import Path

from conftest import print_comparison
from repro.isa95 import extract_topology
from repro.sim import (ScenarioReport, build_scenario, run_scenario,
                       simulate_suite)
from repro.sysml import load_model
from repro.testkit.scale import mega_factory_sources

SCALE = 10
SEED = 7
ROUNDS = 3
#: Floor for events/second on the x10 factory; the engine does integer
#: heap operations only, so regressions past this are real.
EVENTS_PER_SECOND_TARGET = 20_000.0


def test_mega_factory_simulation_throughput():
    topology = extract_topology(
        load_model(*mega_factory_sources(SCALE)))
    machines = len(topology.machines)
    # a dense book: ~10 jobs per machine keeps every region contended
    # and the event count high enough for a stable ev/s figure
    spec = build_scenario("baseline", topology, seed=SEED,
                          jobs=10 * machines)
    reference: ScenarioReport | None = None
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        report = run_scenario(spec)
        times.append(time.perf_counter() - start)
        if reference is None:
            reference = report
        assert report.digest == reference.digest
    best = min(times)
    events_per_second = reference.events / best

    suite_start = time.perf_counter()
    briefing = simulate_suite(topology, seed=SEED,
                              base_jobs=2 * len(topology.workcells))
    suite_seconds = time.perf_counter() - suite_start

    Path("BENCH_sim.json").write_text(json.dumps({
        "benchmark": "sim-mega-factory-throughput",
        "scale": SCALE,
        "machines": machines,
        "jobs": len(reference.jobs),
        "events": reference.events,
        "rounds": ROUNDS,
        "best_seconds": round(best, 6),
        "events_per_second": round(events_per_second, 1),
        "suite_scenarios": len(briefing.reports),
        "suite_seconds": round(suite_seconds, 6),
        "events_per_second_target": EVENTS_PER_SECOND_TARGET,
    }, indent=2) + "\n")
    print_comparison("A5 — scenario engine on the x10 mega-factory", [
        ("one scenario", f"{reference.events} events",
         f"{best * 1e3:.1f} ms", f"{events_per_second:,.0f} ev/s"),
        ("canonical trio", f"{len(briefing.reports)} scenarios",
         f"{suite_seconds * 1e3:.1f} ms", ""),
    ])
    assert events_per_second >= EVENTS_PER_SECOND_TARGET
