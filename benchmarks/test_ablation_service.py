"""Serving ablation (ours): closed-loop load against ``repro serve``.

Eight concurrent clients each issue 25 requests against a real
:class:`ServiceHTTPServer` on the loopback interface. The request mix
cycles through five option variants, so the 200-request run carries
heavy repetition — exactly the regime the single-flight coalescer and
the result memo exist for.

Hard claims asserted here:

* the service executes the pipeline a handful of times, not 200
  (``service.pipeline_executions`` ≪ ``service.requests``);
* every response for a given variant is byte-identical — coalesced
  followers, memo hits and fresh executions serialize the same bundle;
* nothing is rejected at the default admission settings (the memo
  absorbs repeats without consuming pipeline slots).

The benchmarked quantity is a warm request (memo hit), and the bench
JSON ``extra_info`` carries the load-phase latency distribution (p50 /
p95) plus the execution-collapse ratio.

``test_sharded_worker_sweep`` is the A2d companion: the same closed
loop pointed at the sharded tier (real ``repro serve`` child processes
behind a :class:`RouterService`) at 1 / 2 / 4 workers, with a request
pool of *distinct* models so every request is real pipeline work. It
publishes the throughput trajectory to ``BENCH_sharded.json`` — the
>= 2.5x @ 4 workers gate only applies on multi-core runners (the
trajectory is recorded, honestly flat, on single-core boxes). The same
test then probes the warm-path p95 at 1x and 10x request volume; that
gate is a *ratio* bound (plus an absolute floor), so it binds on every
runner regardless of hardware speed.
"""

import json
import os
import threading
import time
from pathlib import Path

from conftest import print_comparison
from repro.codegen import PipelineOptions
from repro.icelab.model_gen import icelab_sources
from repro.obs import METRICS, snapshot_delta
from repro.service import (ConfigurationService, RouterService,
                           ServiceClient, ServiceHTTPServer, WorkerProcess)

CLIENTS = 8
REQUESTS_PER_CLIENT = 25
VARIANTS = [{"namespace": f"line-{i}"} for i in range(5)]


def percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_closed_loop_load_collapses_executions(benchmark):
    sources = icelab_sources()
    service = ConfigurationService(PipelineOptions(), policy="block")
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    serve_thread = threading.Thread(target=server.serve_forever,
                                    kwargs={"poll_interval": 0.05},
                                    daemon=True)
    serve_thread.start()
    before = METRICS.snapshot()
    latencies = []
    bodies_by_variant = {}
    failures = []
    lock = threading.Lock()

    def client_loop(worker):
        with ServiceClient(port=server.port,
                           client_id=f"client-{worker}") as client:
            for i in range(REQUESTS_PER_CLIENT):
                variant = (worker + i) % len(VARIANTS)
                started = time.perf_counter()
                status, _, body = client.generate_raw(
                    sources, options=VARIANTS[variant])
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    if status != 200:
                        failures.append((worker, i, status))
                    bodies_by_variant.setdefault(variant, set()).add(body)

    threads = [threading.Thread(target=client_loop, args=(w,))
               for w in range(CLIENTS)]
    load_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    load_seconds = time.perf_counter() - load_started
    delta = snapshot_delta(before, METRICS.snapshot())

    # the benchmarked quantity: one warm request (served from the memo)
    with ServiceClient(port=server.port, client_id="bench") as bench:
        benchmark.pedantic(
            lambda: bench.generate_raw(sources, options=VARIANTS[0]),
            rounds=10, iterations=1)

    report = server.drain_and_shutdown(deadline=10.0)
    server.server_close()
    serve_thread.join(5)

    total = CLIENTS * REQUESTS_PER_CLIENT
    executions = delta.get("service.pipeline_executions", 0)
    assert failures == []
    assert delta["service.requests"] == total
    assert delta["service.responses"] == total

    # -- single-flight + memo collapse ---------------------------------
    # 200 requests over 5 variants must execute the pipeline only a
    # handful of times: once per variant, plus at most the odd repeat
    # that races a memo store. "≪" operationalized as <= 10% of load.
    assert executions >= len(VARIANTS)
    assert executions <= total // 10, (
        f"{executions} pipeline executions for {total} requests — "
        f"single-flight/memo collapse is not working")

    # -- determinism across roles --------------------------------------
    for variant, bodies in bodies_by_variant.items():
        assert len(bodies) == 1, (
            f"variant {variant} produced {len(bodies)} distinct payloads")

    assert report.completed  # clean drain after the load

    p50 = percentile(latencies, 0.50)
    p95 = percentile(latencies, 0.95)
    benchmark.extra_info["service_load"] = {
        "clients": CLIENTS,
        "requests": total,
        "variants": len(VARIANTS),
        "pipeline_executions": executions,
        "collapse_ratio": round(total / executions, 1),
        "memo_hits": delta.get("service.memo_hits", 0),
        "singleflight_followers": delta.get(
            "service.singleflight.followers", 0),
        "load_seconds": round(load_seconds, 4),
        "throughput_rps": round(total / load_seconds, 1),
        "p50_s": round(p50, 6),
        "p95_s": round(p95, 6),
    }
    print(f"\n=== service load: {total} requests, {CLIENTS} clients ===")
    print(f"pipeline executions : {executions} "
          f"({total / executions:.0f}x collapse)")
    print(f"memo hits           : {delta.get('service.memo_hits', 0)}")
    print(f"p50 / p95 latency   : {p50 * 1e3:.1f}ms / {p95 * 1e3:.1f}ms")
    print(f"throughput          : {total / load_seconds:.0f} req/s")


# -- A2d: sharded-tier throughput sweep ------------------------------------

WORKER_TIERS = [1, 2, 4]
SWEEP_REQUESTS = 16  # distinct models: every request executes the pipeline
SWEEP_CLIENTS = 4
SHARDED_SPEEDUP_TARGET = 2.5  # @ 4 workers, multi-core runners only


def _sweep_variant(i: int) -> list[str]:
    """Distinct sources per request -> distinct routing keys, no memo."""
    sources = list(icelab_sources())
    sources[0] = sources[0] + f"\n// sweep variant {i}\n"
    return sources


def _measure_sharded_tier(count: int, workdir: Path) -> dict:
    """Closed-loop wall time for SWEEP_REQUESTS against *count* shards."""
    cache_dir = workdir / f"cache-{count}"
    serve_args = ["--namespace", "bench", "--cache-dir", str(cache_dir)]
    workers = [WorkerProcess(f"bench{count}w{i}", serve_args=serve_args,
                             workdir=str(workdir))
               for i in range(count)]
    try:
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.wait_ready(60.0)
        router = RouterService(
            workers, PipelineOptions(namespace="bench",
                                     cache_dir=str(cache_dir)))
        try:
            payloads = {}
            failures = []
            lock = threading.Lock()
            pending = list(range(SWEEP_REQUESTS))

            def client_loop():
                while True:
                    with lock:
                        if not pending:
                            return
                        variant = pending.pop()
                    status, _, body, _ = router.dispatch(
                        _sweep_variant(variant))
                    with lock:
                        if status != 200:
                            failures.append((variant, status))
                        payloads[variant] = body

            threads = [threading.Thread(target=client_loop)
                       for _ in range(SWEEP_CLIENTS)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(300)
            wall = time.perf_counter() - started
            assert failures == [], failures
            assert len(payloads) == SWEEP_REQUESTS
            return {
                "workers": count,
                "wall_seconds": round(wall, 4),
                "throughput_rps": round(SWEEP_REQUESTS / wall, 2),
                "payloads": payloads,
            }
        finally:
            router.close()
    finally:
        for worker in workers:
            worker.close()


P95_VOLUME_WORKERS = 2
P95_BASE_REQUESTS = 50     # 1x volume
P95_VOLUME_FACTOR = 10     # the 10x probe
P95_RATIO_BOUND = 3.0      # hardware-robust: ratio of p95s, not absolutes
P95_FLOOR_SECONDS = 0.025  # ignore ratio noise below 25ms p95


def _measure_p95_volume(workdir: Path) -> dict:
    """Warm-path p95 at 1x and 10x request volume on a 2-worker tier.

    All requests share one model, so after the first execution every
    dispatch is a memo hit — the probe isolates the *serving* path
    (router, HTTP, queueing) from pipeline compute. A healthy tier's
    p95 must not balloon with volume; the gate is a ratio (plus an
    absolute floor), so it binds identically on fast and slow runners.
    """
    cache_dir = workdir / "cache-p95"
    serve_args = ["--namespace", "bench", "--cache-dir", str(cache_dir)]
    workers = [WorkerProcess(f"p95w{i}", serve_args=serve_args,
                             workdir=str(workdir))
               for i in range(P95_VOLUME_WORKERS)]
    sources = _sweep_variant(0)
    try:
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.wait_ready(60.0)
        router = RouterService(
            workers, PipelineOptions(namespace="bench",
                                     cache_dir=str(cache_dir)))
        try:
            router.dispatch(sources)  # prime the memo

            def measure(total: int) -> float:
                latencies = []
                failures = []
                lock = threading.Lock()
                remaining = [total]

                def client_loop():
                    while True:
                        with lock:
                            if remaining[0] <= 0:
                                return
                            remaining[0] -= 1
                        started = time.perf_counter()
                        status, _, _, _ = router.dispatch(sources)
                        elapsed = time.perf_counter() - started
                        with lock:
                            latencies.append(elapsed)
                            if status != 200:
                                failures.append(status)

                threads = [threading.Thread(target=client_loop)
                           for _ in range(SWEEP_CLIENTS)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(300)
                assert failures == [], failures
                assert len(latencies) == total
                return percentile(latencies, 0.95)

            p95_1x = measure(P95_BASE_REQUESTS)
            p95_10x = measure(P95_BASE_REQUESTS * P95_VOLUME_FACTOR)
        finally:
            router.close()
    finally:
        for worker in workers:
            worker.close()
    return {
        "workers": P95_VOLUME_WORKERS,
        "requests_1x": P95_BASE_REQUESTS,
        "requests_10x": P95_BASE_REQUESTS * P95_VOLUME_FACTOR,
        "p95_1x_s": round(p95_1x, 6),
        "p95_10x_s": round(p95_10x, 6),
        "ratio": round(p95_10x / p95_1x, 2) if p95_1x > 0 else None,
        "ratio_bound": P95_RATIO_BOUND,
        "floor_s": P95_FLOOR_SECONDS,
    }


def test_sharded_worker_sweep(tmp_path):
    """Sweep 1/2/4 workers, publish BENCH_sharded.json, gate on >=4 cores."""
    tiers = [_measure_sharded_tier(count, tmp_path)
             for count in WORKER_TIERS]
    base = tiers[0]

    # differential check first: every sharded tier must return
    # byte-identical payloads to the single-worker tier, per variant
    for tier in tiers[1:]:
        for variant, body in tier["payloads"].items():
            assert body == base["payloads"][variant], (
                f"{tier['workers']}-worker payload for variant {variant} "
                f"diverges from the 1-worker reference")
    for tier in tiers:
        del tier["payloads"]  # not for the JSON
        tier["speedup_vs_1"] = round(
            base["wall_seconds"] / tier["wall_seconds"], 2)

    # volume robustness: warm-path p95 must not balloon 1x -> 10x
    p95_volume = _measure_p95_volume(tmp_path)

    cpu_count = os.cpu_count() or 1
    gate_applies = cpu_count >= 4
    Path("BENCH_sharded.json").write_text(json.dumps({
        "benchmark": "sharded-serving-throughput",
        "corpus": "icelab + per-request variant comment",
        "requests": SWEEP_REQUESTS,
        "clients": SWEEP_CLIENTS,
        "cpu_count": cpu_count,
        "speedup_target_at_4": SHARDED_SPEEDUP_TARGET,
        "gate_applied": gate_applies,
        "tiers": tiers,
        "p95_volume": p95_volume,
    }, indent=2) + "\n")

    rows = [(f"{t['workers']} worker(s)",
             "baseline" if t is base else
             (f">= {SHARDED_SPEEDUP_TARGET}x" if t["workers"] == 4
              and gate_applies else "recorded"),
             f"{t['wall_seconds'] * 1e3:.0f} ms",
             f"{t['speedup_vs_1']:.2f}x, {t['throughput_rps']:.1f} req/s")
            for t in tiers]
    rows.append((f"p95 @{P95_BASE_REQUESTS} req",
                 "baseline", f"{p95_volume['p95_1x_s'] * 1e3:.1f} ms",
                 f"{P95_VOLUME_WORKERS} workers, warm path"))
    rows.append((
        f"p95 @{P95_BASE_REQUESTS * P95_VOLUME_FACTOR} req",
        f"<= {P95_RATIO_BOUND}x",
        f"{p95_volume['p95_10x_s'] * 1e3:.1f} ms",
        f"ratio {p95_volume['ratio']}x"))
    print_comparison(
        f"A2d — sharded serving sweep ({cpu_count} cpu)", rows)

    # the p95 volume gate is ratio-based (with an absolute floor), so
    # it binds on every runner: a tier that queues unboundedly or leaks
    # per-request state shows up as p95 growth long before a timeout
    allowed = max(P95_RATIO_BOUND * p95_volume["p95_1x_s"],
                  P95_FLOOR_SECONDS)
    assert p95_volume["p95_10x_s"] <= allowed, (
        f"warm-path p95 grew from {p95_volume['p95_1x_s'] * 1e3:.1f}ms "
        f"at {P95_BASE_REQUESTS} requests to "
        f"{p95_volume['p95_10x_s'] * 1e3:.1f}ms at "
        f"{P95_BASE_REQUESTS * P95_VOLUME_FACTOR} — beyond the "
        f"{P95_RATIO_BOUND}x ratio bound "
        f"(floor {P95_FLOOR_SECONDS * 1e3:.0f}ms)")

    # scaling is a property of the hardware: worker processes can only
    # run concurrently when there are cores to run them on, so the
    # throughput gate binds on >= 4-core runners and the trajectory is
    # recorded (honestly flat) everywhere else
    if gate_applies:
        top = next(t for t in tiers if t["workers"] == 4)
        assert top["speedup_vs_1"] >= SHARDED_SPEEDUP_TARGET, (
            f"4-worker speedup {top['speedup_vs_1']}x below "
            f"{SHARDED_SPEEDUP_TARGET}x on a {cpu_count}-core runner")
