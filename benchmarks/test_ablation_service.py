"""Serving ablation (ours): closed-loop load against ``repro serve``.

Eight concurrent clients each issue 25 requests against a real
:class:`ServiceHTTPServer` on the loopback interface. The request mix
cycles through five option variants, so the 200-request run carries
heavy repetition — exactly the regime the single-flight coalescer and
the result memo exist for.

Hard claims asserted here:

* the service executes the pipeline a handful of times, not 200
  (``service.pipeline_executions`` ≪ ``service.requests``);
* every response for a given variant is byte-identical — coalesced
  followers, memo hits and fresh executions serialize the same bundle;
* nothing is rejected at the default admission settings (the memo
  absorbs repeats without consuming pipeline slots).

The benchmarked quantity is a warm request (memo hit), and the bench
JSON ``extra_info`` carries the load-phase latency distribution (p50 /
p95) plus the execution-collapse ratio.
"""

import threading
import time

from repro.codegen import PipelineOptions
from repro.icelab.model_gen import icelab_sources
from repro.obs import METRICS, snapshot_delta
from repro.service import ConfigurationService, ServiceClient, ServiceHTTPServer

CLIENTS = 8
REQUESTS_PER_CLIENT = 25
VARIANTS = [{"namespace": f"line-{i}"} for i in range(5)]


def percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_closed_loop_load_collapses_executions(benchmark):
    sources = icelab_sources()
    service = ConfigurationService(PipelineOptions(), policy="block")
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    serve_thread = threading.Thread(target=server.serve_forever,
                                    kwargs={"poll_interval": 0.05},
                                    daemon=True)
    serve_thread.start()
    before = METRICS.snapshot()
    latencies = []
    bodies_by_variant = {}
    failures = []
    lock = threading.Lock()

    def client_loop(worker):
        with ServiceClient(port=server.port,
                           client_id=f"client-{worker}") as client:
            for i in range(REQUESTS_PER_CLIENT):
                variant = (worker + i) % len(VARIANTS)
                started = time.perf_counter()
                status, _, body = client.generate_raw(
                    sources, options=VARIANTS[variant])
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    if status != 200:
                        failures.append((worker, i, status))
                    bodies_by_variant.setdefault(variant, set()).add(body)

    threads = [threading.Thread(target=client_loop, args=(w,))
               for w in range(CLIENTS)]
    load_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    load_seconds = time.perf_counter() - load_started
    delta = snapshot_delta(before, METRICS.snapshot())

    # the benchmarked quantity: one warm request (served from the memo)
    with ServiceClient(port=server.port, client_id="bench") as bench:
        benchmark.pedantic(
            lambda: bench.generate_raw(sources, options=VARIANTS[0]),
            rounds=10, iterations=1)

    report = server.drain_and_shutdown(deadline=10.0)
    server.server_close()
    serve_thread.join(5)

    total = CLIENTS * REQUESTS_PER_CLIENT
    executions = delta.get("service.pipeline_executions", 0)
    assert failures == []
    assert delta["service.requests"] == total
    assert delta["service.responses"] == total

    # -- single-flight + memo collapse ---------------------------------
    # 200 requests over 5 variants must execute the pipeline only a
    # handful of times: once per variant, plus at most the odd repeat
    # that races a memo store. "≪" operationalized as <= 10% of load.
    assert executions >= len(VARIANTS)
    assert executions <= total // 10, (
        f"{executions} pipeline executions for {total} requests — "
        f"single-flight/memo collapse is not working")

    # -- determinism across roles --------------------------------------
    for variant, bodies in bodies_by_variant.items():
        assert len(bodies) == 1, (
            f"variant {variant} produced {len(bodies)} distinct payloads")

    assert report.completed  # clean drain after the load

    p50 = percentile(latencies, 0.50)
    p95 = percentile(latencies, 0.95)
    benchmark.extra_info["service_load"] = {
        "clients": CLIENTS,
        "requests": total,
        "variants": len(VARIANTS),
        "pipeline_executions": executions,
        "collapse_ratio": round(total / executions, 1),
        "memo_hits": delta.get("service.memo_hits", 0),
        "singleflight_followers": delta.get(
            "service.singleflight.followers", 0),
        "load_seconds": round(load_seconds, 4),
        "throughput_rps": round(total / load_seconds, 1),
        "p50_s": round(p50, 6),
        "p95_s": round(p95, 6),
    }
    print(f"\n=== service load: {total} requests, {CLIENTS} clients ===")
    print(f"pipeline executions : {executions} "
          f"({total / executions:.0f}x collapse)")
    print(f"memo hits           : {delta.get('service.memo_hits', 0)}")
    print(f"p50 / p95 latency   : {p50 * 1e3:.1f}ms / {p95 * 1e3:.1f}ms")
    print(f"throughput          : {total / load_seconds:.0f} req/s")
