"""A6 — planner ablation: greedy-with-DP-heuristic vs uniform-cost.

The operations-planning backend defaults to greedy best-first on the
per-part dynamic-programming heuristic. This ablation measures why:

* **greedy** expands exactly one state per plan action (the heuristic
  admits monotone descent), so search effort grows *linearly* with the
  order book;
* **uniform-cost** (Dijkstra, the only strategy that would be safe
  without the optimality argument) explodes combinatorially — it is
  measured on the small tiers only and the blow-up ratio is published.

Gates are hardware-robust (node counts and exact-cost equalities, no
wall-clock thresholds); wall times are recorded for the trajectory.
``BENCH_plan.json`` is the artifact the ``plan-smoke`` CI job uploads.
"""

import json
import time
from pathlib import Path

from conftest import print_comparison
from repro.icelab.model_gen import icelab_sources
from repro.isa95 import extract_topology
from repro.planning import (FactoryDomain, PlanningOptions, build_task,
                            plan_operations, solve)
from repro.sim import generate_workload
from repro.sysml import load_model

JOB_TIERS = [2, 3, 4, 8, 12]  # greedy: the scaling trajectory
UNIFORM_TIERS = [2, 3]        # uniform: only where it terminates


def _topology():
    return extract_topology(load_model(*icelab_sources()))


def _measure(task, strategy):
    started = time.perf_counter()
    result = solve(task, strategy=strategy)
    wall = time.perf_counter() - started
    return {"cost": result.cost, "expanded": result.expanded,
            "generated": result.generated,
            "wall_seconds": round(wall, 4)}


def test_planner_ablation_trajectory():
    topology = _topology()
    domain = FactoryDomain(topology)
    tiers = []
    for jobs in JOB_TIERS:
        task = build_task(domain,
                          generate_workload(topology, seed=7, jobs=jobs))
        greedy = _measure(task, "greedy")
        tier = {"jobs": jobs,
                "steps": sum(len(r.steps) for r in task.parts),
                "greedy": greedy}
        if jobs in UNIFORM_TIERS:
            uniform = _measure(task, "uniform")
            assert uniform["cost"] == greedy["cost"], (
                f"greedy lost optimality at {jobs} jobs")
            tier["uniform"] = uniform
            tier["expansion_ratio"] = round(
                uniform["expanded"] / greedy["expanded"], 1)
        tiers.append(tier)

        # the load-bearing claim: greedy walks straight downhill, one
        # expansion per plan action — linear in the plan, always
        assert greedy["expanded"] == greedy["cost"], (
            f"greedy expanded {greedy['expanded']} states for a "
            f"{greedy['cost']}-action plan at {jobs} jobs — the "
            f"heuristic lost monotone descent")

    # uniform must demonstrate the blow-up greedy avoids (that is the
    # whole ablation): already >= 10x more expansions on the small tiers
    blow_up = [t["expansion_ratio"] for t in tiers
               if "expansion_ratio" in t]
    assert blow_up and max(blow_up) >= 10.0, (
        f"uniform-vs-greedy expansion ratios {blow_up} — the ablation "
        f"no longer shows why the heuristic matters")

    # end-to-end determinism of the full backend at the top tier
    options = PlanningOptions(seed=7, problems=2)
    first = plan_operations(topology, options)
    second = plan_operations(topology, options)
    pooled = plan_operations(topology, options.replace(jobs=4))
    assert first.digest == second.digest == pooled.digest
    assert first.all_valid

    Path("BENCH_plan.json").write_text(json.dumps({
        "benchmark": "planner-ablation",
        "corpus": "icelab, seeded workloads (seed 7)",
        "strategies": ["greedy", "uniform"],
        "uniform_tiers": UNIFORM_TIERS,
        "tiers": tiers,
        "backend_digest": first.digest,
    }, indent=2) + "\n")

    rows = []
    for tier in tiers:
        greedy = tier["greedy"]
        rows.append((f"greedy @{tier['jobs']} jobs",
                     "1 state/action",
                     f"{greedy['wall_seconds'] * 1e3:.0f} ms",
                     f"cost {greedy['cost']}, "
                     f"{greedy['expanded']} expanded"))
        if "uniform" in tier:
            uniform = tier["uniform"]
            rows.append((f"uniform @{tier['jobs']} jobs",
                         "ground truth",
                         f"{uniform['wall_seconds'] * 1e3:.0f} ms",
                         f"cost {uniform['cost']}, "
                         f"{uniform['expanded']} expanded "
                         f"({tier['expansion_ratio']}x)"))
    print_comparison("A6 — planner ablation (greedy DP vs uniform)", rows)
