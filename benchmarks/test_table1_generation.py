"""T1-gen: Table I, last row — the automatic generation results.

Paper: generation time 3.19 s, 6 OPC UA servers, 4 OPC UA clients,
697 KB of configuration. We benchmark the identical pipeline (model ->
JSON -> YAML) on the identical inventory. Time is measured on our
substrate (pure Python, no Kubernetes API), so the assertion is
order-of-magnitude (seconds, not minutes); server/client counts must
match exactly; size must be the same order of magnitude.
"""

from conftest import print_comparison, record_phases
from repro.codegen import PipelineOptions, generate_configuration
from repro.obs import Tracer

PAPER = {"time_s": 3.19, "servers": 6, "clients": 4, "size_kb": 697}


def test_table1_generation(benchmark, model):
    result = benchmark(generate_configuration, model)
    # one extra traced run attributes the timing to pipeline phases in
    # the bench JSON (the timed runs above stay untraced)
    traced = generate_configuration(
        model, options=PipelineOptions(tracer=Tracer()))
    record_phases(benchmark, traced.trace)
    print_comparison("Table I — generation results", [
        ("generation time (s)", PAPER["time_s"],
         round(result.generation_seconds, 3), "same order (seconds)"),
        ("# OPC UA servers", PAPER["servers"], result.opcua_server_count,
         "exact"),
        ("# OPC UA clients", PAPER["clients"], result.opcua_client_count,
         "exact (capacity=120)"),
        ("config size (KB)", PAPER["size_kb"],
         round(result.config_size_kb), "same order"),
    ])
    assert result.opcua_server_count == PAPER["servers"]
    assert result.opcua_client_count == PAPER["clients"]
    assert result.generation_seconds < 10 * PAPER["time_s"]
    assert PAPER["size_kb"] / 3.5 <= result.config_size_kb \
        <= PAPER["size_kb"] * 3.5


def test_full_front_end_plus_generation_time(benchmark):
    """Model text -> parse -> resolve -> validate -> generate, timed.

    This is the closest analogue of the paper's 3.19 s figure, which
    starts from the authored model artifacts.
    """
    from repro.icelab import icelab_sources
    from repro.sysml import load_model

    sources = icelab_sources()

    def whole_flow():
        loaded = load_model(*sources)
        return generate_configuration(loaded)

    result = benchmark.pedantic(whole_flow, rounds=3, iterations=1)
    # traced run attributes front-end phases (parse/resolve) too
    tracer = Tracer()
    with tracer.activate():
        whole_flow()
    record_phases(benchmark, tracer.trace())
    print_comparison("end-to-end generation (incl. parsing)", [
        ("time (s)", PAPER["time_s"], "see benchmark table",
         "paper includes their model load too"),
        ("# servers", PAPER["servers"], result.opcua_server_count),
        ("# clients", PAPER["clients"], result.opcua_client_count),
    ])
    assert result.opcua_server_count == PAPER["servers"]


def test_grouping_is_the_published_one(generation):
    """The 4 clients partition the machines as capacity-120 FFD does."""
    groups = {g.name: sorted(g.machine_names) for g in generation.groups}
    assert groups == {
        "opcua-client-01": ["conveyor"],
        "opcua-client-02": ["fiam", "ur5"],
        "opcua-client-03": ["emco", "kairos1", "qcPc", "siemensPlc"],
        "opcua-client-04": ["kairos2", "spea", "warehouse"],
    }
