"""A2 follow-up (ablation, ours): jobs/cache accelerator effectiveness.

Measures the generation pipeline on the scaled factory model
(``extra_cells=16``, the A2 scaling point) in four configurations —
cold serial, cold parallel (``jobs=4``), cold cached and warm cached —
and records the timings plus cache hit rates in the bench JSON
``extra_info`` so perf PRs carry attributable numbers.

Hard claims asserted here:

* every configuration produces byte-identical manifests and the same
  ``config_size_bytes``;
* a warm cache makes ``generate_configuration`` at least 3x faster
  than the cold serial run (artifact replay skips extraction and both
  generation steps);
* with >= 2 cores, cold ``jobs=4`` beats cold ``jobs=1`` (on a
  single-core runner the pool can only add overhead, so the strict
  assertion is gated on ``os.cpu_count()`` and the measurement is
  still recorded).
"""

import os
import time

import pytest

from conftest import print_comparison
from test_ablation_scaling import replicated_specs

from repro.cache import ArtifactCache
from repro.codegen import GenerationPipeline, PipelineOptions
from repro.icelab.model_gen import icelab_sources
from repro.obs import METRICS
from repro.sysml import load_model

EXTRA_CELLS = 16


@pytest.fixture(scope="module")
def scaled_model():
    sources = icelab_sources(replicated_specs(EXTRA_CELLS))
    return load_model(*sources)


def _timed_generate(model, options, rounds=1):
    # min-of-N: a single shot is at the mercy of a gen-2 GC pass, whose
    # cost scales with everything else the test session has loaded
    result, best = None, None
    for _ in range(rounds):
        started = time.perf_counter()
        result = GenerationPipeline(options).run_on_model(model)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_cache_and_parallel_ablation(scaled_model, tmp_path, benchmark):
    cache_dir = str(tmp_path / "cache")

    cold_serial, cold_serial_s = _timed_generate(
        scaled_model, PipelineOptions(jobs=1), rounds=3)
    cold_parallel, cold_parallel_s = _timed_generate(
        scaled_model, PipelineOptions(jobs=4))

    METRICS.reset()
    cold_cached, cold_cached_s = _timed_generate(
        scaled_model, PipelineOptions(cache_dir=cache_dir))
    cold_snap = METRICS.snapshot()

    METRICS.reset()
    warm_options = PipelineOptions(cache_dir=cache_dir)
    warm, warm_s = _timed_generate(scaled_model, warm_options, rounds=3)
    warm_snap = METRICS.snapshot()

    # the benchmarked quantity: a warm-cache generation run
    benchmark.pedantic(
        lambda: GenerationPipeline(warm_options).run_on_model(
            scaled_model),
        rounds=3, iterations=1)

    # -- determinism: acceleration must never change a byte ------------
    for other in (cold_parallel, cold_cached, warm):
        assert other.manifests == cold_serial.manifests
        assert other.machine_configs == cold_serial.machine_configs
        assert other.config_size_bytes == cold_serial.config_size_bytes

    # -- replay effectiveness ------------------------------------------
    warm_speedup = cold_serial_s / warm_s if warm_s else float("inf")
    assert warm_snap["cache.hits"] > 0
    assert warm_snap["templates.renders"] == 0
    assert warm_speedup >= 3.0, (
        f"warm cache {warm_s:.4f}s vs cold serial {cold_serial_s:.4f}s "
        f"= {warm_speedup:.2f}x (< 3x)")

    # -- parallel effectiveness (needs real cores) ---------------------
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert cold_parallel_s < cold_serial_s, (
            f"jobs=4 {cold_parallel_s:.4f}s not faster than "
            f"jobs=1 {cold_serial_s:.4f}s on {cores} cores")

    hits = warm_snap["cache.hits"]
    misses = warm_snap["cache.misses"]
    benchmark.extra_info["ablation"] = {
        "extra_cells": EXTRA_CELLS,
        "cpu_cores": cores,
        "cold_serial_s": round(cold_serial_s, 6),
        "cold_parallel_s": round(cold_parallel_s, 6),
        "cold_cached_s": round(cold_cached_s, 6),
        "warm_cached_s": round(warm_s, 6),
        "warm_speedup": round(warm_speedup, 2),
        "cold_cache_misses": cold_snap["cache.misses"],
        "warm_cache_hits": hits,
        "warm_cache_misses": misses,
        "warm_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses else 0.0,
        "cache_entries": ArtifactCache(cache_dir).stats()["entries"],
    }
    print_comparison("A2 — cache/parallel ablation", [
        ("cold serial", "baseline", f"{cold_serial_s * 1e3:.1f}ms"),
        ("cold jobs=4", "< serial on >=2 cores",
         f"{cold_parallel_s * 1e3:.1f}ms", f"{cores} core(s)"),
        ("cold cached", "~serial + put cost",
         f"{cold_cached_s * 1e3:.1f}ms"),
        ("warm cached", ">= 3x faster", f"{warm_s * 1e3:.1f}ms",
         f"{warm_speedup:.1f}x"),
    ])


def test_parse_cache_ablation(tmp_path, benchmark):
    """Front-end replay: cached parse trees skip re-parsing sources."""
    sources = icelab_sources(replicated_specs(EXTRA_CELLS))
    cache = ArtifactCache(tmp_path / "cache")

    started = time.perf_counter()
    cold = load_model(*sources, cache=cache)
    cold_s = time.perf_counter() - started

    METRICS.reset()
    warm_model = benchmark.pedantic(
        lambda: load_model(*sources, cache=cache), rounds=2, iterations=1)
    snap = METRICS.snapshot()

    assert warm_model.content_fingerprint == cold.content_fingerprint
    assert snap["cache.hits"] > 0
    benchmark.extra_info["parse_cache"] = {
        "cold_s": round(cold_s, 6),
        "sources": len(sources) + 1,  # + stdlib
        "warm_hits_per_round": snap["cache.hits"] // 2,
    }
